//! The per-architecture event catalog: events, constraints, invariants, and
//! derived events, all resolved to dense [`EventId`]s.

use crate::arch::{Arch, ArchParams, PmuSpec};
use crate::derived::DerivedEvent;
use crate::event::{Domain, EventDesc, Semantic};
use crate::expr::Expr;
use crate::id::EventId;
use crate::invariant::Invariant;
use crate::source::{SourceDesc, SourceId, SourceKind, SourceNoise};
use crate::synth::{synthesize, FreeParams};
use std::collections::HashMap;

/// A processor's performance-monitoring catalog.
///
/// Aggregates everything BayesPerf needs to know about a CPU before any
/// measurement happens: the countable events, which registers can count
/// them, the PMU register inventory, the microarchitectural invariants
/// connecting events, and the derived events users typically measure.
#[derive(Debug, Clone)]
pub struct Catalog {
    arch: Arch,
    params: ArchParams,
    pmu: PmuSpec,
    events: Vec<EventDesc>,
    by_semantic: HashMap<Semantic, EventId>,
    by_name: HashMap<String, EventId>,
    invariants: Vec<Invariant>,
    derived: Vec<DerivedEvent>,
    nominal: Vec<f64>,
    sources: Vec<SourceDesc>,
    source_of: Vec<SourceId>,
}

impl Catalog {
    /// Builds the catalog for an architecture (PMU events only — the
    /// implicit PMU source is the sole registered observation source).
    pub fn new(arch: Arch) -> Self {
        Self::build(arch, false)
    }

    /// Builds the catalog extended with the heterogeneous observation
    /// plane: the gauge events ([`Semantic::gauges`]) are appended after
    /// the PMU events, gauge [`SourceDesc`]s (disk-ops, disk-bytes, power)
    /// are registered at distinct cadences with their own noise models,
    /// and the cross-source invariant and derived-event libraries couple
    /// the planes in one factor graph.
    ///
    /// PMU event ids, invariants, and derived events are a strict prefix
    /// of the base catalog's, so everything built against
    /// [`Catalog::new`] works unchanged on an extended catalog.
    pub fn with_observation_plane(arch: Arch) -> Self {
        Self::build(arch, true)
    }

    fn build(arch: Arch, observation_plane: bool) -> Self {
        let params = ArchParams::for_arch(arch);
        let pmu = PmuSpec::for_arch(arch);
        let mut events = Vec::new();
        let mut by_semantic = HashMap::new();
        let mut by_name = HashMap::new();

        for &sem in Semantic::all() {
            if sem == Semantic::RefCycles && params.ref_cycle_ratio.is_none() {
                continue;
            }
            let id = EventId::from_raw(events.len() as u16);
            let (domain, counter_mask, needs_msr) = placement(arch, sem);
            let desc = EventDesc {
                id,
                name: event_name(arch, sem).to_owned(),
                semantic: sem,
                domain,
                counter_mask,
                needs_msr,
            };
            by_semantic.insert(sem, id);
            by_name.insert(desc.name.clone(), id);
            events.push(desc);
        }

        let mut sources = vec![SourceDesc::pmu()];
        let mut source_of = vec![SourceId::PMU; events.len()];
        if observation_plane {
            for &sem in Semantic::gauges() {
                let id = EventId::from_raw(events.len() as u16);
                let desc = EventDesc {
                    id,
                    name: event_name(arch, sem).to_owned(),
                    semantic: sem,
                    domain: Domain::Gauge,
                    counter_mask: 0,
                    needs_msr: false,
                };
                by_semantic.insert(sem, id);
                by_name.insert(desc.name.clone(), id);
                events.push(desc);
            }
            source_of.resize(events.len(), SourceId::PMU);
            for (source, owned) in gauge_sources() {
                let sid = SourceId::from_raw(sources.len() as u16);
                sources.push(SourceDesc { id: sid, ..source });
                for sem in owned {
                    source_of[by_semantic[&sem].index()] = sid;
                }
            }
        }

        let mut catalog = Catalog {
            arch,
            params,
            pmu,
            events,
            by_semantic,
            by_name,
            invariants: Vec::new(),
            derived: Vec::new(),
            nominal: Vec::new(),
            sources,
            source_of,
        };
        catalog.invariants = build_invariants(&catalog);
        catalog.derived = build_derived(&catalog);
        if observation_plane {
            catalog
                .invariants
                .extend(build_cross_source_invariants(&catalog));
            catalog.derived.extend(build_cross_source_derived(&catalog));
        }
        catalog.nominal = synthesize(&catalog, &FreeParams::default())
            .into_iter()
            .map(|v| v.max(1.0))
            .collect();
        catalog
    }

    /// The architecture this catalog describes.
    pub fn arch(&self) -> Arch {
        self.arch
    }

    /// Fixed microarchitectural parameters.
    pub fn params(&self) -> &ArchParams {
        &self.params
    }

    /// PMU register inventory.
    pub fn pmu(&self) -> PmuSpec {
        self.pmu
    }

    /// Number of events in the catalog.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if the catalog has no events (never the case for built catalogs).
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Looks up the event implementing a semantic role.
    ///
    /// Returns `None` when the architecture lacks the role (e.g.
    /// [`Semantic::RefCycles`] on ppc64).
    pub fn id(&self, sem: Semantic) -> Option<EventId> {
        self.by_semantic.get(&sem).copied()
    }

    /// Like [`Catalog::id`] but panics with a descriptive message.
    ///
    /// # Panics
    ///
    /// Panics if the architecture does not implement `sem`.
    pub fn require(&self, sem: Semantic) -> EventId {
        self.id(sem)
            .unwrap_or_else(|| panic!("{} does not implement {sem}", self.arch))
    }

    /// Looks up an event by its vendor-style name.
    pub fn id_by_name(&self, name: &str) -> Option<EventId> {
        self.by_name.get(name).copied()
    }

    /// The descriptor for an event.
    pub fn event(&self, id: EventId) -> &EventDesc {
        &self.events[id.index()]
    }

    /// Iterates over all event descriptors in id order.
    pub fn iter(&self) -> impl Iterator<Item = &EventDesc> {
        self.events.iter()
    }

    /// All programmable (multiplexable) events, in a stable priority order
    /// used by counter-count sweeps (Figs. 1 and 8).
    pub fn programmable_events(&self) -> Vec<EventId> {
        self.events
            .iter()
            .filter(|e| e.is_programmable())
            .map(|e| e.id)
            .collect()
    }

    /// The invariant library for this architecture.
    pub fn invariants(&self) -> &[Invariant] {
        &self.invariants
    }

    /// Invariants that mention `id`.
    pub fn invariants_of(&self, id: EventId) -> Vec<&Invariant> {
        self.invariants
            .iter()
            .filter(|inv| inv.events().contains(&id))
            .collect()
    }

    /// The ten derived events the evaluation measures (Fig. 6).
    pub fn derived_events(&self) -> &[DerivedEvent] {
        &self.derived
    }

    /// Typical magnitude of an event per mega-cycle; used to normalize
    /// variables for inference. Always ≥ 1.
    pub fn nominal_scale(&self, id: EventId) -> f64 {
        self.nominal[id.index()]
    }

    /// Expression helper: the event implementing `sem`.
    ///
    /// # Panics
    ///
    /// Panics if the architecture does not implement `sem`.
    pub fn ex(&self, sem: Semantic) -> Expr {
        Expr::event(self.require(sem))
    }

    /// The registered observation sources, in [`SourceId`] order. A base
    /// catalog has exactly one (the PMU); an extended catalog
    /// ([`Catalog::with_observation_plane`]) adds the gauge sources.
    pub fn sources(&self) -> &[SourceDesc] {
        &self.sources
    }

    /// The descriptor of one source, or `None` for an unregistered id.
    pub fn source(&self, id: SourceId) -> Option<&SourceDesc> {
        self.sources.get(id.index())
    }

    /// Which source owns (produces) an event. PMU events always map to
    /// [`SourceId::PMU`]; gauge events map to their registered source.
    pub fn source_of(&self, id: EventId) -> SourceId {
        self.source_of
            .get(id.index())
            .copied()
            .unwrap_or(SourceId::PMU)
    }

    /// Events owned by `source`, in id order.
    pub fn events_of_source(&self, source: SourceId) -> Vec<EventId> {
        self.events
            .iter()
            .filter(|e| self.source_of(e.id) == source)
            .map(|e| e.id)
            .collect()
    }

    /// True when the catalog was built with the multi-source observation
    /// plane (gauge events + gauge sources registered).
    pub fn has_observation_plane(&self) -> bool {
        self.sources.len() > 1
    }
}

/// The simulated gauge source roster of an extended catalog: descriptor
/// template (id is assigned at registration) plus the semantics each
/// source owns. Cadences are deliberately heterogeneous — disk-ops every
/// 4 windows, disk-bytes every 8, power every 16 — so fusion always deals
/// with rates the PMU never produces.
fn gauge_sources() -> Vec<(SourceDesc, Vec<Semantic>)> {
    use Semantic::*;
    vec![
        (
            SourceDesc {
                id: SourceId::PMU, // reassigned at registration
                name: "disk-ops".to_string(),
                kind: SourceKind::Gauge,
                cadence: 4,
                noise: SourceNoise::Gaussian {
                    rel_sigma: 0.02,
                    drift: 0.01,
                },
            },
            vec![DiskReadOps, DiskWriteOps],
        ),
        (
            SourceDesc {
                id: SourceId::PMU,
                name: "disk-bytes".to_string(),
                kind: SourceKind::Gauge,
                cadence: 8,
                noise: SourceNoise::Gaussian {
                    rel_sigma: 0.03,
                    drift: 0.02,
                },
            },
            vec![DiskReadBytes, DiskWriteBytes],
        ),
        (
            SourceDesc {
                id: SourceId::PMU,
                name: "power".to_string(),
                kind: SourceKind::Gauge,
                cadence: 16,
                noise: SourceNoise::Gaussian {
                    rel_sigma: 0.05,
                    drift: 0.03,
                },
            },
            vec![PowerWatts],
        ),
    ]
}

/// Vendor-style event name per architecture and semantic.
fn event_name(arch: Arch, sem: Semantic) -> &'static str {
    use Semantic::*;
    match arch {
        Arch::X86SkyLake => match sem {
            Cycles => "CPU_CLK_UNHALTED.THREAD",
            RefCycles => "CPU_CLK_UNHALTED.REF_TSC",
            Instructions => "INST_RETIRED.ANY",
            UopsIssued => "UOPS_ISSUED.ANY",
            UopsRetired => "UOPS_RETIRED.RETIRE_SLOTS",
            UopsBadSpec => "UOPS_ISSUED.BAD_SPEC",
            IdqUopsNotDelivered => "IDQ_UOPS_NOT_DELIVERED.CORE",
            IdqMiteUops => "IDQ.MITE_UOPS",
            IdqDsbUops => "IDQ.DSB_UOPS",
            IdqMsUops => "IDQ.MS_UOPS",
            RecoveryCycles => "INT_MISC.RECOVERY_CYCLES",
            BackendStallSlots => "RESOURCE_STALLS.SLOTS",
            MachineClears => "MACHINE_CLEARS.COUNT",
            BrInst => "BR_INST_RETIRED.ALL_BRANCHES",
            BrMisp => "BR_MISP_RETIRED.ALL_BRANCHES",
            IcacheMisses => "ICACHE_64B.IFTAG_MISS",
            ItlbMisses => "ITLB_MISSES.WALK_COMPLETED",
            DtlbMisses => "DTLB_LOAD_MISSES.WALK_COMPLETED",
            L1dMisses => "L1D.REPLACEMENT",
            L1dPendMissPending => "L1D_PEND_MISS.PENDING",
            L2References => "L2_RQSTS.REFERENCES",
            L2Misses => "L2_RQSTS.MISS",
            LlcReferences => "LONGEST_LAT_CACHE.REFERENCE",
            LlcHits => "LONGEST_LAT_CACHE.HIT",
            LlcMisses => "LONGEST_LAT_CACHE.MISS",
            LlcWritebacks => "L2_LINES_OUT.DIRTY",
            StallsTotal => "CYCLE_ACTIVITY.STALLS_TOTAL",
            StallsMemAny => "CYCLE_ACTIVITY.STALLS_MEM_ANY",
            StallsL2Pending => "CYCLE_ACTIVITY.STALLS_L2_PENDING",
            StallsL1dPending => "CYCLE_ACTIVITY.STALLS_L1D_PENDING",
            StallsOther => "CYCLE_ACTIVITY.STALLS_OTHER",
            OroDrdAnyCycles => "OFFCORE_REQUESTS_OUTSTANDING.CYCLES_WITH_DATA_RD",
            OroDrdBwCycles => "OFFCORE_REQUESTS_OUTSTANDING.DATA_RD_GE_6",
            OroDrdLatCycles => "OFFCORE_REQUESTS_OUTSTANDING.DATA_RD_LT_6",
            DmaTransactions => "UNC_IIO_DMA.TRANSACTIONS",
            ImcCasRd => "UNC_M_CAS_COUNT.RD",
            ImcCasWr => "UNC_M_CAS_COUNT.WR",
            IioWrAlloc => "UNC_IIO_DATA_REQ_OF_CPU.WR_ALLOC",
            IioWrFull => "UNC_IIO_DATA_REQ_OF_CPU.WR_FULL",
            IioWrPart => "UNC_IIO_DATA_REQ_OF_CPU.WR_PART",
            IioWrNonSnoop => "UNC_IIO_DATA_REQ_OF_CPU.WR_NONSNOOP",
            IioRdCode => "UNC_IIO_DATA_REQ_OF_CPU.RD_CODE",
            IioRdPart => "UNC_IIO_DATA_REQ_OF_CPU.RD_PART",
            IioWrTotal => "UNC_IIO_DATA_REQ_OF_CPU.WR_TOTAL",
            IioRdTotal => "UNC_IIO_DATA_REQ_OF_CPU.RD_TOTAL",
            // OS-level gauges are vendor-neutral; the names are shared
            // across architectures.
            DiskReadOps => "GAUGE_DISK.RD_OPS",
            DiskWriteOps => "GAUGE_DISK.WR_OPS",
            DiskReadBytes => "GAUGE_DISK.RD_BYTES",
            DiskWriteBytes => "GAUGE_DISK.WR_BYTES",
            PowerWatts => "GAUGE_POWER.PKG_WATTS",
        },
        Arch::Ppc64Power9 => match sem {
            Cycles => "PM_RUN_CYC",
            RefCycles => "PM_REF_CYC", // unused: ppc64 catalog omits RefCycles
            Instructions => "PM_RUN_INST_CMPL",
            UopsIssued => "PM_INST_DISP",
            UopsRetired => "PM_IOPS_CMPL",
            UopsBadSpec => "PM_INST_DISP_FLUSHED",
            IdqUopsNotDelivered => "PM_ICT_NOSLOT_CYC_SLOTS",
            IdqMiteUops => "PM_INST_FROM_DECODE",
            IdqDsbUops => "PM_INST_FROM_PREDECODE",
            IdqMsUops => "PM_INST_FROM_UCODE",
            RecoveryCycles => "PM_FLUSH_RECOVERY_CYC",
            BackendStallSlots => "PM_DISP_HELD_SLOTS",
            MachineClears => "PM_FLUSH_MPRED_NONBR",
            BrInst => "PM_BR_CMPL",
            BrMisp => "PM_BR_MPRED_CMPL",
            IcacheMisses => "PM_L1_ICACHE_MISS",
            ItlbMisses => "PM_ITLB_MISS",
            DtlbMisses => "PM_DTLB_MISS",
            L1dMisses => "PM_LD_MISS_L1",
            L1dPendMissPending => "PM_CMPLU_STALL_DMISS_PENDING_CYC",
            L2References => "PM_DATA_FROM_L2_REQ",
            L2Misses => "PM_DATA_FROM_L2MISS",
            LlcReferences => "PM_DATA_FROM_L3_REQ",
            LlcHits => "PM_DATA_FROM_L3",
            LlcMisses => "PM_DATA_FROM_L3MISS",
            LlcWritebacks => "PM_L3_CO_MEM",
            StallsTotal => "PM_CMPLU_STALL",
            StallsMemAny => "PM_CMPLU_STALL_MEM_ANY",
            StallsL2Pending => "PM_CMPLU_STALL_DMISS_L3MISS",
            StallsL1dPending => "PM_CMPLU_STALL_DMISS_L2L3",
            StallsOther => "PM_CMPLU_STALL_OTHER",
            OroDrdAnyCycles => "PM_MEM_READ_OUTSTANDING_CYC",
            OroDrdBwCycles => "PM_MEM_READ_BW_CYC",
            OroDrdLatCycles => "PM_MEM_READ_LAT_CYC",
            DmaTransactions => "PM_IO_DMA_TRANSACTIONS",
            ImcCasRd => "PM_MEM_READ_CMD",
            ImcCasWr => "PM_MEM_WRITE_CMD",
            IioWrAlloc => "PM_IO_WR_ALLOC",
            IioWrFull => "PM_IO_WR_FULL",
            IioWrPart => "PM_IO_WR_PART",
            IioWrNonSnoop => "PM_IO_WR_NONSNOOP",
            IioRdCode => "PM_IO_RD_CODE",
            IioRdPart => "PM_IO_RD_PART",
            IioWrTotal => "PM_IO_WR_TOTAL",
            IioRdTotal => "PM_IO_RD_TOTAL",
            DiskReadOps => "GAUGE_DISK.RD_OPS",
            DiskWriteOps => "GAUGE_DISK.WR_OPS",
            DiskReadBytes => "GAUGE_DISK.RD_BYTES",
            DiskWriteBytes => "GAUGE_DISK.WR_BYTES",
            PowerWatts => "GAUGE_POWER.PKG_WATTS",
        },
    }
}

/// Counting placement: domain, core-counter mask, MSR requirement.
///
/// Encodes the paper's §4 examples of configuration-validity constraints:
/// `L1D_PEND_MISS.PENDING` may only be counted on core counter 3 on
/// Haswell/Broadwell-class parts, and offcore-response events consume one
/// of two auxiliary MSRs.
fn placement(arch: Arch, sem: Semantic) -> (Domain, u8, bool) {
    use Semantic::*;
    let full = 0b1111u8;
    match sem {
        Cycles | RefCycles | Instructions => (Domain::Fixed, 0, false),
        // Soft gauges never occupy a PMU register: the wildcard below
        // must not silently turn them into core events.
        DiskReadOps | DiskWriteOps | DiskReadBytes | DiskWriteBytes | PowerWatts => {
            (Domain::Gauge, 0, false)
        }
        DmaTransactions | ImcCasRd | ImcCasWr | IioWrAlloc | IioWrFull | IioWrPart
        | IioWrNonSnoop | IioRdCode | IioRdPart | IioWrTotal | IioRdTotal => {
            (Domain::Uncore, 0, false)
        }
        L1dPendMissPending => (Domain::Core, 0b1000, false),
        OroDrdAnyCycles | OroDrdBwCycles | OroDrdLatCycles => (Domain::Core, full, true),
        // Precise-distribution stall events occupy the upper counters on x86.
        StallsL2Pending | StallsL1dPending if arch == Arch::X86SkyLake => {
            (Domain::Core, 0b1100, false)
        }
        _ => (Domain::Core, full, false),
    }
}

/// Builds the invariant library for a catalog.
fn build_invariants(c: &Catalog) -> Vec<Invariant> {
    use Semantic::*;
    let p = c.params().clone();
    let w = p.issue_width;
    let k = Expr::konst;
    let mut invs = vec![
        // Top-down slot conservation: every issue slot is either used, lost
        // to the frontend, lost to mis-speculation recovery, or lost to a
        // backend stall.
        Invariant::new(
            "top_down_slots",
            c.ex(IdqUopsNotDelivered)
                + c.ex(UopsIssued)
                + k(w) * c.ex(RecoveryCycles)
                + c.ex(BackendStallSlots),
            k(w) * c.ex(Cycles),
            0.01,
        ),
        // µop flow conservation across the pipeline.
        Invariant::new(
            "uop_flow",
            c.ex(UopsIssued),
            c.ex(UopsRetired) + c.ex(UopsBadSpec),
            0.01,
        ),
        // µops arrive from exactly one of the three decode paths.
        Invariant::new(
            "decode_paths",
            c.ex(IdqMiteUops) + c.ex(IdqDsbUops) + c.ex(IdqMsUops),
            c.ex(UopsIssued),
            0.01,
        ),
        // Recovery cycles are charged per squash event at documented costs.
        Invariant::new(
            "recovery_cost",
            c.ex(RecoveryCycles),
            k(p.recovery_per_branch_miss) * c.ex(BrMisp)
                + k(p.recovery_per_machine_clear) * c.ex(MachineClears),
            0.01,
        ),
        // Squashed µops per squash event (soft: wasted work varies).
        Invariant::new(
            "badspec_uops",
            c.ex(UopsBadSpec),
            k(p.badspec_uops_per_branch_miss) * c.ex(BrMisp)
                + k(p.badspec_uops_per_machine_clear) * c.ex(MachineClears),
            0.08,
        ),
        // µops per instruction is workload-dependent but tightly banded.
        Invariant::new(
            "uops_per_inst",
            c.ex(UopsRetired),
            k(p.uops_per_inst_nominal) * c.ex(Instructions),
            0.10,
        ),
        // L2 demand traffic is the sum of L1D and L1I misses.
        Invariant::new(
            "l2_demand",
            c.ex(L2References),
            c.ex(L1dMisses) + c.ex(IcacheMisses),
            0.01,
        ),
        // LLC sees exactly the L2 misses.
        Invariant::new("llc_flow", c.ex(LlcReferences), c.ex(L2Misses), 0.01),
        // LLC references split into hits and misses.
        Invariant::new(
            "llc_split",
            c.ex(LlcReferences),
            c.ex(LlcHits) + c.ex(LlcMisses),
            0.01,
        ),
        // DRAM CAS commands serve LLC misses, writebacks and device DMA
        // (footnote 1 of the paper: the bandwidth-composition invariant).
        Invariant::new(
            "dram_flow",
            c.ex(ImcCasRd) + c.ex(ImcCasWr),
            c.ex(LlcMisses) + c.ex(LlcWritebacks) + c.ex(DmaTransactions),
            0.01,
        ),
        // Memory stalls split by deepest outstanding miss level.
        Invariant::new(
            "mem_stall_split",
            c.ex(StallsMemAny),
            c.ex(StallsL2Pending) + c.ex(StallsL1dPending),
            0.01,
        ),
        // Total stalls split into memory-bound and other.
        Invariant::new(
            "total_stall_split",
            c.ex(StallsTotal),
            c.ex(StallsMemAny) + c.ex(StallsOther),
            0.01,
        ),
        // Outstanding-demand-read cycles split into bandwidth-bound and
        // latency-bound (the DRAM-stall decomposition of §4).
        Invariant::new(
            "oro_split",
            c.ex(OroDrdAnyCycles),
            c.ex(OroDrdBwCycles) + c.ex(OroDrdLatCycles),
            0.01,
        ),
        // IIO write/read totals are sums of their flavors.
        Invariant::new(
            "iio_wr_total",
            c.ex(IioWrTotal),
            c.ex(IioWrAlloc) + c.ex(IioWrFull) + c.ex(IioWrPart) + c.ex(IioWrNonSnoop),
            0.01,
        ),
        Invariant::new(
            "iio_rd_total",
            c.ex(IioRdTotal),
            c.ex(IioRdCode) + c.ex(IioRdPart),
            0.01,
        ),
        // Every IIO request is a DMA transaction.
        Invariant::new(
            "dma_io",
            c.ex(DmaTransactions),
            c.ex(IioWrTotal) + c.ex(IioRdTotal),
            0.01,
        ),
        // Little's law on L1D miss occupancy (soft: latency varies).
        Invariant::new(
            "l1d_pending_occupancy",
            c.ex(L1dPendMissPending),
            k(p.l1d_miss_latency) * c.ex(L1dMisses),
            0.12,
        ),
        // Mispredicted branches are a subset of branches; expressed as a
        // soft proportionality so it contributes a weak coupling factor.
        Invariant::new(
            "branch_misp_band",
            c.ex(BrMisp),
            k(0.03) * c.ex(BrInst),
            0.9,
        ),
        // -- Soft cross-cluster couplings. These encode the top-down
        // methodology's occupancy relations (Yasin); they are workload
        // dependent, hence wide, but they connect the pipeline, stall,
        // cache, DRAM-occupancy, and TLB event groups into one factor
        // graph — required for transitive inference across any schedule.
        Invariant::new(
            "stall_cycle_band",
            c.ex(StallsTotal),
            k(0.30) * c.ex(Cycles),
            0.9,
        ),
        Invariant::new(
            "dram_stall_occupancy",
            c.ex(StallsL2Pending),
            k(0.5) * c.ex(OroDrdAnyCycles),
            0.8,
        ),
        Invariant::new(
            "l1d_stall_occupancy",
            c.ex(StallsL1dPending),
            k(0.1) * c.ex(L1dPendMissPending),
            0.8,
        ),
        Invariant::new(
            "dtlb_l1d_band",
            c.ex(DtlbMisses),
            k(0.045) * c.ex(L1dMisses),
            0.9,
        ),
        Invariant::new(
            "itlb_icache_band",
            c.ex(ItlbMisses),
            k(0.1) * c.ex(IcacheMisses),
            0.9,
        ),
    ];
    if let Some(r) = p.ref_cycle_ratio {
        invs.push(Invariant::new(
            "ref_cycles",
            c.ex(RefCycles),
            k(r) * c.ex(Cycles),
            0.01,
        ));
    }
    invs
}

/// Builds the ten derived events the evaluation measures (Fig. 6).
fn build_derived(c: &Catalog) -> Vec<DerivedEvent> {
    use Semantic::*;
    let w = c.params().issue_width;
    let k = Expr::konst;
    let slots = k(w) * c.ex(Cycles);
    vec![
        DerivedEvent::new(
            "CPI",
            "cycles per retired instruction",
            c.ex(Cycles) / c.ex(Instructions),
        ),
        DerivedEvent::new(
            "Branch_Mispredict_Ratio",
            "mispredicted branches per branch",
            c.ex(BrMisp) / c.ex(BrInst),
        ),
        DerivedEvent::new(
            "L1D_MPKI",
            "L1D misses per kilo-instruction",
            k(1000.0) * c.ex(L1dMisses) / c.ex(Instructions),
        ),
        DerivedEvent::new(
            "LLC_MPKI",
            "LLC misses per kilo-instruction",
            k(1000.0) * c.ex(LlcMisses) / c.ex(Instructions),
        ),
        DerivedEvent::new(
            "Frontend_Bound",
            "fraction of issue slots starved by the frontend",
            c.ex(IdqUopsNotDelivered) / slots.clone(),
        ),
        DerivedEvent::new(
            "Bad_Speculation",
            "fraction of issue slots wasted on squashed work",
            (c.ex(UopsIssued) - c.ex(UopsRetired) + k(w) * c.ex(RecoveryCycles)) / slots.clone(),
        ),
        DerivedEvent::new(
            "Retiring",
            "fraction of issue slots doing useful work",
            c.ex(UopsRetired) / slots,
        ),
        DerivedEvent::new(
            "Memory_Bound",
            "fraction of cycles stalled on memory, weighted by L3-miss share \
             ((1 - L3 hit fraction) × L2-pending stalls / clocks, §4)",
            (k(1.0) - c.ex(LlcHits) / c.ex(LlcReferences)) * c.ex(StallsL2Pending) / c.ex(Cycles),
        ),
        DerivedEvent::new(
            "DRAM_Latency_Bound",
            "fraction of cycles latency-bound on DRAM demand reads",
            (c.ex(OroDrdAnyCycles) - c.ex(OroDrdBwCycles)) / c.ex(Cycles),
        ),
        DerivedEvent::new(
            "DRAM_Bandwidth",
            "bytes of DRAM traffic per cycle (CAS commands × line size / clocks)",
            k(c.params().cacheline_bytes) * (c.ex(ImcCasRd) + c.ex(ImcCasWr)) / c.ex(Cycles),
        ),
    ]
}

/// Cross-source invariants of the extended observation plane: factors
/// that couple gauge readings to PMU counters in the same graph, so a
/// miscounting source is caught by the *other* plane (the Röhl-style
/// validation argument). All expressions are homogeneous (degree-1, no
/// additive constants), keeping them valid in both per-mega-cycle rate
/// units and per-window count units.
fn build_cross_source_invariants(c: &Catalog) -> Vec<Invariant> {
    use Semantic::*;
    let k = Expr::konst;
    vec![
        // Block-layer bytes are the device DMA traffic the uncore IIO
        // counters see, cache-line sized (device reads ⇒ disk writes to
        // memory and vice versa cancel out in the aggregate).
        Invariant::new(
            "disk_dma_bytes",
            c.ex(DiskReadBytes) + c.ex(DiskWriteBytes),
            k(c.params().cacheline_bytes) * (c.ex(IioRdTotal) + c.ex(IioWrTotal)),
            0.01,
        ),
        // Bytes and completed operations agree at the nominal request
        // size (one 4 KiB page per IOP).
        Invariant::new(
            "disk_io_size",
            c.ex(DiskReadBytes) + c.ex(DiskWriteBytes),
            k(crate::synth::DISK_IO_BYTES_PER_OP) * (c.ex(DiskReadOps) + c.ex(DiskWriteOps)),
            0.01,
        ),
        // Package power tracks activity: a static leakage term per cycle
        // plus a dynamic term per issued µop. Soft — the real coefficient
        // is workload and DVFS dependent — but tight enough to catch a
        // power gauge (or a cycle counter) reading nonsense.
        Invariant::new(
            "power_activity",
            c.ex(PowerWatts),
            k(crate::synth::POWER_STATIC_W_PER_CYCLE) * c.ex(Cycles)
                + k(crate::synth::POWER_DYN_W_PER_UOP) * c.ex(UopsIssued),
            0.05,
        ),
    ]
}

/// Cross-source derived events: metrics no single source can answer.
fn build_cross_source_derived(c: &Catalog) -> Vec<DerivedEvent> {
    use Semantic::*;
    vec![
        DerivedEvent::new(
            "Bytes_per_IOP",
            "mean I/O request size: disk bytes moved per completed operation",
            (c.ex(DiskReadBytes) + c.ex(DiskWriteBytes)) / (c.ex(DiskReadOps) + c.ex(DiskWriteOps)),
        ),
        DerivedEvent::new(
            "IPC_per_Watt",
            "instructions per cycle per package watt (PMU ÷ power gauge)",
            c.ex(Instructions) / c.ex(Cycles) / c.ex(PowerWatts),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalogs_build_for_both_arches() {
        let x86 = Catalog::new(Arch::X86SkyLake);
        let ppc = Catalog::new(Arch::Ppc64Power9);
        assert_eq!(x86.len(), 45);
        assert_eq!(ppc.len(), 44); // no RefCycles
        assert!(x86.id(Semantic::RefCycles).is_some());
        assert!(ppc.id(Semantic::RefCycles).is_none());
    }

    #[test]
    fn name_lookup_roundtrips() {
        let cat = Catalog::new(Arch::X86SkyLake);
        for ev in cat.iter() {
            assert_eq!(cat.id_by_name(&ev.name), Some(ev.id));
        }
    }

    #[test]
    fn ids_are_dense_and_ordered() {
        let cat = Catalog::new(Arch::Ppc64Power9);
        for (i, ev) in cat.iter().enumerate() {
            assert_eq!(ev.id.index(), i);
        }
    }

    #[test]
    fn pinned_event_constraint_present() {
        let cat = Catalog::new(Arch::X86SkyLake);
        let pend = cat.require(Semantic::L1dPendMissPending);
        assert_eq!(cat.event(pend).counter_mask, 0b1000);
        assert_eq!(cat.event(pend).core_counter_choices(), 1);
    }

    #[test]
    fn offcore_events_need_msr() {
        let cat = Catalog::new(Arch::X86SkyLake);
        for sem in [
            Semantic::OroDrdAnyCycles,
            Semantic::OroDrdBwCycles,
            Semantic::OroDrdLatCycles,
        ] {
            assert!(cat.event(cat.require(sem)).needs_msr);
        }
    }

    #[test]
    fn ten_derived_events_per_arch() {
        for arch in Arch::all() {
            let cat = Catalog::new(arch);
            assert_eq!(cat.derived_events().len(), 10);
        }
    }

    #[test]
    fn derived_events_cover_many_unique_hpcs() {
        let cat = Catalog::new(Arch::X86SkyLake);
        let mut unique = std::collections::BTreeSet::new();
        for d in cat.derived_events() {
            unique.extend(d.events());
        }
        // The paper's ten metrics need ~29 unique HPCs; our model needs 15+.
        assert!(unique.len() >= 15, "only {} unique events", unique.len());
    }

    #[test]
    fn invariants_reference_known_events() {
        for arch in Arch::all() {
            let cat = Catalog::new(arch);
            for inv in cat.invariants() {
                for id in inv.events() {
                    assert!(id.index() < cat.len(), "{} out of range", inv.name);
                }
            }
            assert!(cat.invariants().len() >= 17);
        }
    }

    #[test]
    fn invariants_of_finds_memberships() {
        let cat = Catalog::new(Arch::X86SkyLake);
        let llc_miss = cat.require(Semantic::LlcMisses);
        let names: Vec<_> = cat
            .invariants_of(llc_miss)
            .iter()
            .map(|i| i.name.as_str())
            .collect();
        assert!(names.contains(&"llc_split"));
        assert!(names.contains(&"dram_flow"));
    }

    #[test]
    fn nominal_scales_are_positive() {
        let cat = Catalog::new(Arch::X86SkyLake);
        for ev in cat.iter() {
            assert!(cat.nominal_scale(ev.id) >= 1.0, "{}", ev.name);
        }
    }

    #[test]
    fn base_catalog_has_only_the_pmu_source() {
        let cat = Catalog::new(Arch::X86SkyLake);
        assert!(!cat.has_observation_plane());
        assert_eq!(cat.sources().len(), 1);
        assert_eq!(cat.sources()[0].id, crate::SourceId::PMU);
        for ev in cat.iter() {
            assert_eq!(cat.source_of(ev.id), crate::SourceId::PMU);
        }
    }

    #[test]
    fn observation_plane_extends_the_base_catalog_as_a_prefix() {
        for arch in Arch::all() {
            let base = Catalog::new(arch);
            let ext = Catalog::with_observation_plane(arch);
            assert!(ext.has_observation_plane());
            assert_eq!(ext.len(), base.len() + Semantic::gauges().len());
            // PMU events, invariants, and derived events are a strict
            // prefix: ids and names are unchanged.
            for ev in base.iter() {
                let e = ext.event(ev.id);
                assert_eq!(e.name, ev.name);
                assert_eq!(e.semantic, ev.semantic);
                assert_eq!(e.domain, ev.domain);
            }
            assert!(ext.invariants().len() > base.invariants().len());
            assert_eq!(ext.derived_events().len(), base.derived_events().len() + 2);
            // Gauge events carry the Gauge domain and never enter the
            // programmable pool.
            for &sem in Semantic::gauges() {
                let id = ext.require(sem);
                assert_eq!(ext.event(id).domain, Domain::Gauge);
                assert!(!ext.programmable_events().contains(&id));
                assert_ne!(ext.source_of(id), crate::SourceId::PMU);
            }
            // Dense ids survive the extension.
            for (i, ev) in ext.iter().enumerate() {
                assert_eq!(ev.id.index(), i);
            }
        }
    }

    #[test]
    fn gauge_sources_have_distinct_cadences_and_own_their_events() {
        let ext = Catalog::with_observation_plane(Arch::X86SkyLake);
        assert_eq!(ext.sources().len(), 4); // pmu + disk-ops + disk-bytes + power
        let mut cadences = std::collections::BTreeSet::new();
        for (i, s) in ext.sources().iter().enumerate() {
            assert_eq!(s.id.index(), i, "source ids are dense");
            cadences.insert(s.cadence);
            for ev in ext.events_of_source(s.id) {
                assert_eq!(ext.source_of(ev), s.id);
            }
        }
        assert_eq!(cadences.len(), 4, "every source runs at its own cadence");
        assert!(ext.source(crate::SourceId::from_raw(99)).is_none());
        // Every gauge event belongs to exactly one registered source.
        let owned: usize = ext
            .sources()
            .iter()
            .skip(1)
            .map(|s| ext.events_of_source(s.id).len())
            .sum();
        assert_eq!(owned, Semantic::gauges().len());
    }

    #[test]
    fn cross_source_invariants_and_derived_are_registered() {
        let ext = Catalog::with_observation_plane(Arch::X86SkyLake);
        let names: Vec<_> = ext.invariants().iter().map(|i| i.name.as_str()).collect();
        assert!(names.contains(&"disk_dma_bytes"));
        assert!(names.contains(&"disk_io_size"));
        assert!(names.contains(&"power_activity"));
        let derived: Vec<_> = ext
            .derived_events()
            .iter()
            .map(|d| d.name.as_str())
            .collect();
        assert!(derived.contains(&"Bytes_per_IOP"));
        assert!(derived.contains(&"IPC_per_Watt"));
        // Cross-source invariants genuinely span sources.
        let disk_dma = ext
            .invariants()
            .iter()
            .find(|i| i.name == "disk_dma_bytes")
            .unwrap();
        let spanned: std::collections::BTreeSet<_> = disk_dma
            .events()
            .iter()
            .map(|&e| ext.source_of(e))
            .collect();
        assert!(spanned.len() >= 2, "invariant must couple distinct sources");
    }
}
