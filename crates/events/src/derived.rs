//! Derived events: named mathematical combinations of raw HPC measurements.

use crate::expr::{EventEnv, Expr};
use crate::id::EventId;
use serde::{Deserialize, Serialize};

/// A derived event (§2 of the paper): a metric computed from several raw
/// HPC measurements, e.g. `Backend_Bound_SMT` on BroadwellX which alone
/// reads 16 HPCs.
///
/// Derived events are the unit the evaluation measures: Fig. 6 collects the
/// HPCs needed by ten derived events per architecture.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DerivedEvent {
    /// Metric name (e.g. `CPI`, `Memory_Bound`).
    pub name: String,
    /// What the metric means.
    pub description: String,
    /// The combining expression over raw events.
    pub expr: Expr,
}

impl DerivedEvent {
    /// Creates a derived event.
    pub fn new(name: impl Into<String>, description: impl Into<String>, expr: Expr) -> Self {
        DerivedEvent {
            name: name.into(),
            description: description.into(),
            expr,
        }
    }

    /// The raw events this metric reads, in id order.
    pub fn events(&self) -> Vec<EventId> {
        self.expr.events()
    }

    /// Evaluates the metric under `env`.
    pub fn eval<E: EventEnv + ?Sized>(&self, env: &E) -> f64 {
        self.expr.eval(env)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_event_evaluates_its_expression() {
        let cpi = DerivedEvent::new(
            "CPI",
            "cycles per instruction",
            Expr::event(EventId::from_raw(0)) / Expr::event(EventId::from_raw(1)),
        );
        let env = vec![10.0, 5.0];
        assert_eq!(cpi.eval(&env), 2.0);
        assert_eq!(cpi.events().len(), 2);
    }
}
