//! Microarchitectural invariants: soft algebraic constraints between events.

use crate::expr::{EventEnv, Expr};
use crate::id::EventId;
use serde::{Deserialize, Serialize};

/// A (possibly soft) algebraic relation `lhs ≈ rhs` between event counts.
///
/// Exact invariants (`rel_noise` ≈ 0.01) come from flow conservation and
/// architectural identities — they hold by construction on ground truth.
/// Soft invariants (`rel_noise` ≈ 0.1) encode typical-workload regularities
/// like µops-per-instruction; their residual is workload-dependent but
/// bounded, which is exactly what a Gaussian factor with wider variance
/// models.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Invariant {
    /// Human-readable name (used in reports and factor labels).
    pub name: String,
    /// Left-hand side.
    pub lhs: Expr,
    /// Right-hand side.
    pub rhs: Expr,
    /// Expected relative deviation of `lhs - rhs` from zero, as a fraction
    /// of the invariant's magnitude. Drives the factor's Gaussian width.
    pub rel_noise: f64,
}

/// Invariants with `rel_noise` at or below this bound hold (up to numerics)
/// on synthesized ground truth.
pub const EXACT_NOISE_BOUND: f64 = 0.02;

impl Invariant {
    /// Creates an invariant `lhs ≈ rhs` with the given relative noise.
    pub fn new(name: impl Into<String>, lhs: Expr, rhs: Expr, rel_noise: f64) -> Self {
        Invariant {
            name: name.into(),
            lhs,
            rhs,
            rel_noise,
        }
    }

    /// True if the invariant is expected to hold exactly on ground truth.
    pub fn is_exact(&self) -> bool {
        self.rel_noise <= EXACT_NOISE_BOUND
    }

    /// All events referenced by either side, in id order.
    pub fn events(&self) -> Vec<EventId> {
        let mut ids = self.lhs.events();
        ids.extend(self.rhs.events());
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// Raw residual `lhs − rhs` under `env`.
    pub fn residual<E: EventEnv + ?Sized>(&self, env: &E) -> f64 {
        self.lhs.eval(env) - self.rhs.eval(env)
    }

    /// The magnitude against which the residual is normalized:
    /// `max(|lhs|, |rhs|, 1)`.
    pub fn magnitude<E: EventEnv + ?Sized>(&self, env: &E) -> f64 {
        self.lhs
            .eval(env)
            .abs()
            .max(self.rhs.eval(env).abs())
            .max(1.0)
    }

    /// Residual normalized by the invariant's magnitude; the detector signal
    /// of §3 ("probability of deviation from the invariant").
    pub fn relative_residual<E: EventEnv + ?Sized>(&self, env: &E) -> f64 {
        self.residual(env) / self.magnitude(env)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(i: u16) -> Expr {
        Expr::event(EventId::from_raw(i))
    }

    #[test]
    fn residual_and_relative_residual() {
        // e0 ≈ e1 + e2
        let inv = Invariant::new("split", ev(0), ev(1) + ev(2), 0.01);
        let env = vec![10.0, 6.0, 3.0];
        assert_eq!(inv.residual(&env), 1.0);
        assert!((inv.relative_residual(&env) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn events_are_deduplicated_and_sorted() {
        let inv = Invariant::new("x", ev(2) + ev(0), ev(2), 0.01);
        assert_eq!(
            inv.events(),
            vec![EventId::from_raw(0), EventId::from_raw(2)]
        );
    }

    #[test]
    fn exactness_threshold() {
        let exact = Invariant::new("a", ev(0), ev(1), 0.01);
        let soft = Invariant::new("b", ev(0), ev(1), 0.1);
        assert!(exact.is_exact());
        assert!(!soft.is_exact());
    }

    #[test]
    fn magnitude_has_unit_floor() {
        let inv = Invariant::new("tiny", ev(0), ev(1), 0.01);
        let env = vec![0.1, 0.05];
        assert_eq!(inv.magnitude(&env), 1.0);
    }
}
