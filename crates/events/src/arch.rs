//! Processor architectures, their fixed microarchitectural parameters, and
//! PMU register inventories.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The processor models supported by the catalogs, mirroring the paper's two
/// testbeds (§6.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Arch {
    /// Intel Sky Lake-like x86_64 core: 3 fixed + 4 usable programmable HPCs
    /// per SMT thread, 4-wide issue, reference-cycle fixed counter.
    X86SkyLake,
    /// IBM Power9-like ppc64 core: 2 fixed (run cycles / run instructions) +
    /// 4 programmable PMCs, 6-wide dispatch, no reference-cycle counter.
    Ppc64Power9,
}

impl Arch {
    /// All supported architectures.
    pub fn all() -> [Arch; 2] {
        [Arch::X86SkyLake, Arch::Ppc64Power9]
    }

    /// Short lowercase label used in reports ("x86" / "ppc64").
    pub fn label(self) -> &'static str {
        match self {
            Arch::X86SkyLake => "x86",
            Arch::Ppc64Power9 => "ppc64",
        }
    }

    /// Nominal core clock in Hz, used to convert between cycles and time.
    pub fn clock_hz(self) -> f64 {
        match self {
            Arch::X86SkyLake => 2.5e9,
            Arch::Ppc64Power9 => 3.1e9,
        }
    }
}

impl fmt::Display for Arch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Fixed microarchitectural constants that parameterize the invariant
/// library and ground-truth synthesis for one architecture.
///
/// These play the role of the vendor-manual constants the paper draws its
/// algebraic models from (Intel SDM, IBM Power redbooks).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArchParams {
    /// Pipeline issue/dispatch width in µops per cycle (top-down "slots").
    pub issue_width: f64,
    /// Recovery cycles charged per retired branch misprediction.
    pub recovery_per_branch_miss: f64,
    /// Recovery cycles charged per machine clear.
    pub recovery_per_machine_clear: f64,
    /// µops squashed per branch misprediction (bad-speculation cost).
    pub badspec_uops_per_branch_miss: f64,
    /// µops squashed per machine clear.
    pub badspec_uops_per_machine_clear: f64,
    /// Average L1D miss latency in cycles (drives pending-miss occupancy).
    pub l1d_miss_latency: f64,
    /// Ratio of reference cycles to core cycles; `None` if the architecture
    /// has no reference-cycle fixed counter.
    pub ref_cycle_ratio: Option<f64>,
    /// Nominal µops per instruction (soft invariant center).
    pub uops_per_inst_nominal: f64,
    /// Cache line size in bytes (DRAM bandwidth composition).
    pub cacheline_bytes: f64,
}

impl ArchParams {
    /// Parameters for the given architecture.
    pub fn for_arch(arch: Arch) -> Self {
        match arch {
            Arch::X86SkyLake => ArchParams {
                issue_width: 4.0,
                recovery_per_branch_miss: 12.0,
                recovery_per_machine_clear: 30.0,
                badspec_uops_per_branch_miss: 8.0,
                badspec_uops_per_machine_clear: 20.0,
                l1d_miss_latency: 40.0,
                ref_cycle_ratio: Some(0.97),
                uops_per_inst_nominal: 1.12,
                cacheline_bytes: 64.0,
            },
            Arch::Ppc64Power9 => ArchParams {
                issue_width: 6.0,
                recovery_per_branch_miss: 10.0,
                recovery_per_machine_clear: 24.0,
                badspec_uops_per_branch_miss: 10.0,
                badspec_uops_per_machine_clear: 26.0,
                l1d_miss_latency: 48.0,
                ref_cycle_ratio: None,
                uops_per_inst_nominal: 1.05,
                cacheline_bytes: 128.0,
            },
        }
    }
}

/// Inventory of hardware counter registers for one processor model.
///
/// Mirrors the paper's §2: modern cores expose a handful of fixed counters
/// plus 4–10 programmable ones (split between SMT threads), and a separate
/// small set of uncore/offcore counters; offcore-response style events
/// additionally consume one of a tiny pool of MSRs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PmuSpec {
    /// Number of fixed-function counters (always counting, not multiplexed).
    pub n_fixed: u8,
    /// Number of core programmable counters usable by one thread.
    pub n_core: u8,
    /// Number of uncore (IMC/IIO) counters.
    pub n_uncore: u8,
    /// Number of auxiliary MSRs available for offcore-response events.
    pub n_msr: u8,
}

impl PmuSpec {
    /// The PMU inventory for the given architecture.
    pub fn for_arch(arch: Arch) -> Self {
        match arch {
            Arch::X86SkyLake => PmuSpec {
                n_fixed: 3,
                n_core: 4,
                n_uncore: 4,
                n_msr: 2,
            },
            Arch::Ppc64Power9 => PmuSpec {
                n_fixed: 2,
                n_core: 4,
                n_uncore: 4,
                n_msr: 2,
            },
        }
    }

    /// Total number of simultaneously programmable (multiplexable) counters.
    pub fn programmable_total(&self) -> usize {
        self.n_core as usize + self.n_uncore as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arch_labels_are_stable() {
        assert_eq!(Arch::X86SkyLake.label(), "x86");
        assert_eq!(Arch::Ppc64Power9.label(), "ppc64");
        assert_eq!(Arch::X86SkyLake.to_string(), "x86");
    }

    #[test]
    fn x86_has_ref_cycles_ppc_does_not() {
        assert!(ArchParams::for_arch(Arch::X86SkyLake)
            .ref_cycle_ratio
            .is_some());
        assert!(ArchParams::for_arch(Arch::Ppc64Power9)
            .ref_cycle_ratio
            .is_none());
    }

    #[test]
    fn pmu_specs_match_paper_register_counts() {
        let x86 = PmuSpec::for_arch(Arch::X86SkyLake);
        // Three fixed + (eight programmable split between two SMT threads).
        assert_eq!(x86.n_fixed, 3);
        assert_eq!(x86.n_core, 4);
        let ppc = PmuSpec::for_arch(Arch::Ppc64Power9);
        assert_eq!(ppc.n_fixed, 2);
        assert_eq!(ppc.programmable_total(), 8);
    }

    #[test]
    fn issue_width_differs_across_arches() {
        let x = ArchParams::for_arch(Arch::X86SkyLake);
        let p = ArchParams::for_arch(Arch::Ppc64Power9);
        assert!(p.issue_width > x.issue_width);
    }
}
