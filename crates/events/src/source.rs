//! Observation sources: where samples come from and how much to trust them.
//!
//! The base BayesPerf pipeline assumes one producer — the multiplexed PMU
//! — whose measurement error the §4.2 Student-t model describes. A real
//! observation plane fuses more than that: block-layer IOPS and byte
//! gauges, power meters, `/proc` scrapes, each arriving at its own cadence
//! with its own noise character. This module gives every sample stream an
//! identity ([`SourceId`]), a classification ([`SourceKind`]), a cadence,
//! and — the part inference consumes — a per-source error model
//! ([`SourceNoise`]) that the factor graph turns into observation factors.
//!
//! A catalog built with
//! [`Catalog::with_observation_plane`](crate::Catalog::with_observation_plane)
//! registers one [`SourceDesc`] per source and maps every gauge event to
//! its owning source; base catalogs carry only the implicit PMU source.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identity of one sample stream. Dense and small: `0` is always the PMU;
/// gauge and `/proc` sources get ids `1..` in catalog registration order.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct SourceId(u16);

impl SourceId {
    /// The implicit PMU source every base catalog has.
    pub const PMU: SourceId = SourceId(0);

    /// Constructs a source id from its raw index.
    pub fn from_raw(raw: u16) -> SourceId {
        SourceId(raw)
    }

    /// The raw dense index.
    pub fn index(self) -> usize {
        usize::from(self.0)
    }
}

impl fmt::Display for SourceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "src{}", self.0)
    }
}

/// What kind of producer a source is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SourceKind {
    /// The multiplexed hardware PMU (scaled, corrected, Student-t noise).
    Pmu,
    /// A simulated or OS-level soft gauge (diskstats, RAPL, ...).
    Gauge,
    /// A real `/proc`-backed scrape source.
    Proc,
}

impl fmt::Display for SourceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

/// The per-source error model: how an observation from this source becomes
/// a likelihood factor in the graph.
///
/// All scales are *relative* (fraction of the observed magnitude), matching
/// the catalog's unit-invariant convention — the model layer multiplies by
/// the observed location, so the same noise description works in
/// per-mega-cycle rate units and in per-window count units.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SourceNoise {
    /// The PMU path: per-window PMI sub-sample moments drive a Student-t
    /// factor (§4.2); extrapolated reads fall back to the wide
    /// heavy-tailed factor. Carries no parameters — the sample itself
    /// brings its sub-sample statistics.
    StudentT,
    /// A soft gauge: near-Gaussian read noise of `rel_sigma` (fraction of
    /// the reading) plus a slow random-walk calibration `drift`,
    /// composed in quadrature into one effective relative scale.
    Gaussian {
        /// Per-read relative noise (e.g. `0.02` = 2% of the reading).
        rel_sigma: f64,
        /// Relative scale of the accumulated calibration drift.
        drift: f64,
    },
    /// A low-trust source (coarse extrapolation, unreliable scrape):
    /// heavy-tailed with a wide relative scale, so a single wild reading
    /// cannot drag the posterior.
    HeavyTail {
        /// Relative scale of the heavy-tailed factor.
        rel_sigma: f64,
    },
}

impl SourceNoise {
    /// The effective relative observation scale this model contributes,
    /// independent of the sample (the Student-t path is sample-driven and
    /// reports `0.0`).
    pub fn rel_scale(&self) -> f64 {
        match *self {
            SourceNoise::StudentT => 0.0,
            SourceNoise::Gaussian { rel_sigma, drift } => {
                (rel_sigma * rel_sigma + drift * drift).sqrt()
            }
            SourceNoise::HeavyTail { rel_sigma } => rel_sigma,
        }
    }
}

/// One registered observation source: identity, classification, cadence,
/// and error model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SourceDesc {
    /// Dense id of the source.
    pub id: SourceId,
    /// Human-readable name (`"pmu"`, `"disk-ops"`, `"proc"`, ...).
    pub name: String,
    /// Producer classification.
    pub kind: SourceKind,
    /// Nominal sampling cadence in multiplexing windows: the source
    /// produces one sample per event every `cadence` windows (`1` =
    /// every window, like the PMU). Informational for the ingest path;
    /// inference never assumes a sample actually arrives on schedule.
    pub cadence: u32,
    /// The error model observation factors are built from.
    pub noise: SourceNoise,
}

impl SourceDesc {
    /// The implicit PMU source descriptor of a base catalog.
    pub fn pmu() -> SourceDesc {
        SourceDesc {
            id: SourceId::PMU,
            name: "pmu".to_string(),
            kind: SourceKind::Pmu,
            cadence: 1,
            noise: SourceNoise::StudentT,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pmu_source_is_id_zero_with_student_t_noise() {
        let pmu = SourceDesc::pmu();
        assert_eq!(pmu.id, SourceId::PMU);
        assert_eq!(pmu.id.index(), 0);
        assert_eq!(pmu.kind, SourceKind::Pmu);
        assert_eq!(pmu.cadence, 1);
        assert_eq!(pmu.noise, SourceNoise::StudentT);
        assert_eq!(pmu.noise.rel_scale(), 0.0);
    }

    #[test]
    fn gaussian_noise_composes_sigma_and_drift_in_quadrature() {
        let n = SourceNoise::Gaussian {
            rel_sigma: 0.03,
            drift: 0.04,
        };
        assert!((n.rel_scale() - 0.05).abs() < 1e-12);
        let h = SourceNoise::HeavyTail { rel_sigma: 0.5 };
        assert_eq!(h.rel_scale(), 0.5);
    }

    #[test]
    fn source_ids_are_dense_and_displayable() {
        let s = SourceId::from_raw(3);
        assert_eq!(s.index(), 3);
        assert_eq!(s.to_string(), "src3");
        assert_eq!(SourceId::default(), SourceId::PMU);
    }
}
