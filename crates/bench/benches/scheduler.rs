//! Criterion benches for schedule transformation and counter assignment.

use bayesperf_core::scheduler::ScheduleTransformer;
use bayesperf_events::{try_assign, Arch, Catalog};
use bayesperf_simcpu::pack_round_robin;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_transform(c: &mut Criterion) {
    let cat = Catalog::new(Arch::X86SkyLake);
    let tr = ScheduleTransformer::new(&cat);
    let rr = pack_round_robin(&cat, &cat.programmable_events()).unwrap();
    c.bench_function("schedule_transform_full_catalog", |b| {
        b.iter(|| std::hint::black_box(tr.transform(&rr)))
    });
}

fn bench_assignment(c: &mut Criterion) {
    let cat = Catalog::new(Arch::X86SkyLake);
    let events = bayesperf_bench::derived_event_hpcs(&cat);
    let head: Vec<_> = events.into_iter().take(6).collect();
    c.bench_function("counter_assignment", |b| {
        b.iter(|| std::hint::black_box(try_assign(&cat, &head, &cat.pmu())))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_transform, bench_assignment
}
criterion_main!(benches);
