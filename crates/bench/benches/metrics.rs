//! Criterion benches for the DTW error metric.

use bayesperf_core::metrics::{dtw_align, dtw_relative_error};
use criterion::{criterion_group, criterion_main, Criterion};

fn series(n: usize, phase: f64) -> Vec<f64> {
    (0..n)
        .map(|i| 100.0 + 40.0 * ((i as f64 / 7.0) + phase).sin())
        .collect()
}

fn bench_dtw(c: &mut Criterion) {
    let a = series(256, 0.0);
    let b = series(256, 0.6);
    c.bench_function("dtw_align_256_banded", |bch| {
        bch.iter(|| std::hint::black_box(dtw_align(&a, &b, 8)))
    });
    c.bench_function("dtw_error_256_banded", |bch| {
        bch.iter(|| std::hint::black_box(dtw_relative_error(&a, &b, 8)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_dtw
}
criterion_main!(benches);
