//! Criterion benches for the accelerator DES.

use bayesperf_accel::{AccelConfig, Accelerator, InferenceJob};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_des(c: &mut Criterion) {
    let acc = Accelerator::new(AccelConfig::ppc64());
    let job = InferenceJob::typical();
    c.bench_function("accel_des_job", |b| {
        b.iter(|| std::hint::black_box(acc.simulate_job(&job)))
    });
    let big = InferenceJob {
        sites: 16,
        ep_sweeps: 6,
        ..InferenceJob::typical()
    };
    c.bench_function("accel_des_big_job", |b| {
        b.iter(|| std::hint::black_box(acc.simulate_job(&big)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_des
}
criterion_main!(benches);
