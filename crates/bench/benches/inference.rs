//! Criterion benches for the inference hot path (the Fig. 3 CPU numbers),
//! plus the EP engine-farm scaling study: sequential vs multi-threaded
//! sweeps on a 64-site model, reported as *paired* interleaved measurements
//! (see `crates/bench/README.md` for the methodology).

use bayesperf_core::corrector::{Corrector, CorrectorConfig};
use bayesperf_core::model::{build_chunk_model, ModelConfig};
use bayesperf_events::{Arch, Catalog};
use bayesperf_inference::{EpConfig, ExpectationPropagation, FnSite, Gaussian};
use bayesperf_simcpu::{pack_round_robin, Pmu, PmuConfig, Sample};
use bayesperf_workloads::kmeans;
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

fn chunk_fixture(cat: &Catalog) -> Vec<Vec<Sample>> {
    let mut truth = kmeans().instantiate(cat, 0);
    let pmu = Pmu::new(cat, PmuConfig::for_catalog(cat));
    let events = bayesperf_bench::derived_event_hpcs(cat);
    let schedule = pack_round_robin(cat, &events).unwrap();
    let run = pmu.run_multiplexed(&mut truth, &schedule, 4);
    run.windows.iter().map(|w| w.samples.clone()).collect()
}

/// A 64-site engine-farm model: 32 chained variables, one observation site
/// each, plus 31 pairwise coupling sites and one long-range site.
fn farm_model() -> ExpectationPropagation {
    let n = 32;
    let prior = vec![Gaussian::new(5.0, 50.0); n];
    let mut ep = ExpectationPropagation::new(prior, EpConfig::default());
    for v in 0..n {
        let center = 2.0 + v as f64 * 0.25;
        ep.add_site(FnSite::new(vec![v], move |x: &[f64]| {
            Gaussian::new(center, 0.5).log_pdf(x[0])
        }));
    }
    for v in 0..n - 1 {
        ep.add_site(FnSite::new(vec![v, v + 1], |x: &[f64]| {
            Gaussian::new(0.25, 0.1).log_pdf(x[1] - x[0])
        }));
    }
    ep.add_site(FnSite::new(vec![0, n - 1], move |x: &[f64]| {
        Gaussian::new((n - 1) as f64 * 0.25, 1.0).log_pdf(x[1] - x[0])
    }));
    ep
}

fn bench_ep_chunk(c: &mut Criterion) {
    let cat = Catalog::new(Arch::X86SkyLake);
    let windows = chunk_fixture(&cat);
    let cfg = ModelConfig {
        cycles_per_window: 1.0e7,
        ..ModelConfig::for_run(
            &bayesperf_simcpu::Pmu::new(&cat, PmuConfig::for_catalog(&cat)).run_polling(
                &mut kmeans().instantiate(&cat, 0),
                &[],
                1,
            ),
        )
    };
    c.bench_function("ep_chunk_inference", |b| {
        b.iter(|| {
            let model = build_chunk_model(&cat, &windows, &cfg, None, cfg.fast_ep());
            let mut rng = StdRng::seed_from_u64(1);
            std::hint::black_box(model.run(&mut rng));
        })
    });
}

fn bench_corrector_run(c: &mut Criterion) {
    let cat = Catalog::new(Arch::X86SkyLake);
    let mut truth = kmeans().instantiate(&cat, 0);
    let pmu = Pmu::new(&cat, PmuConfig::for_catalog(&cat));
    let events = bayesperf_bench::derived_event_hpcs(&cat);
    let schedule = pack_round_robin(&cat, &events).unwrap();
    let run = pmu.run_multiplexed(&mut truth, &schedule, 8);
    c.bench_function("corrector_8_windows", |b| {
        b.iter(|| {
            let corrector = Corrector::new(&cat, CorrectorConfig::for_run(&run));
            std::hint::black_box(corrector.correct_run(&run));
        })
    });
    c.bench_function("corrector_8_windows_independent_4t", |b| {
        b.iter(|| {
            let cfg = CorrectorConfig::for_run(&run)
                .independent_chunks()
                .with_threads(4);
            let corrector = Corrector::new(&cat, cfg);
            std::hint::black_box(corrector.correct_run(&run));
        })
    });
}

fn bench_engine_farm(c: &mut Criterion) {
    c.bench_function("ep_farm_64sites_sequential", |b| {
        b.iter(|| std::hint::black_box(farm_model().run_parallel(1, 1)))
    });
    let hw = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let threads = hw.clamp(2, 8);
    c.bench_function("ep_farm_64sites_parallel", |b| {
        b.iter(|| std::hint::black_box(farm_model().run_parallel(1, threads)))
    });
    // Honor the same CLI name filter bench_function applies, so e.g.
    // `cargo bench ... ep_chunk_inference` doesn't pay for ~32 unrequested
    // farm runs.
    let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
    if filter.is_none_or(|f| "ep_farm_speedup".contains(f.as_str())) {
        report_paired_speedup(threads, hw);
    }
}

/// Paired interleaved speedup measurement (cbdr-style): alternate
/// sequential and parallel runs so drift affects both arms equally, compute
/// per-pair ratios, and report the mean ratio with a 95% CI.
fn report_paired_speedup(threads: usize, hw: usize) {
    let pairs = if std::env::var_os("BENCH_QUICK").is_some() {
        3
    } else {
        15
    };
    let mut ratios = Vec::with_capacity(pairs);
    // One warm-up pair, discarded.
    let _ = time(|| farm_model().run_parallel(0, 1));
    let _ = time(|| farm_model().run_parallel(0, threads));
    for p in 0..pairs {
        let seq = time(|| farm_model().run_parallel(p as u64, 1));
        let par = time(|| farm_model().run_parallel(p as u64, threads));
        ratios.push(seq / par);
    }
    let n = ratios.len() as f64;
    let mean = ratios.iter().sum::<f64>() / n;
    let var = ratios.iter().map(|r| (r - mean) * (r - mean)).sum::<f64>() / (n - 1.0).max(1.0);
    let half = 1.96 * (var / n).sqrt();
    println!(
        "ep_farm_speedup_{threads}threads            ratio: [{:.2}x {:.2}x {:.2}x] \
         (paired, n={pairs}, {hw} hw threads)",
        mean - half,
        mean,
        mean + half,
    );
    if hw == 1 {
        println!(
            "    note: single-CPU host — parallel arm cannot exceed 1.0x here; \
             see crates/bench/README.md"
        );
    }
}

fn time<T>(f: impl FnOnce() -> T) -> f64 {
    let t = Instant::now();
    std::hint::black_box(f());
    t.elapsed().as_secs_f64()
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_ep_chunk, bench_corrector_run, bench_engine_farm
}
criterion_main!(benches);
