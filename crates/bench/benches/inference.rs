//! Criterion benches for the inference hot path (the Fig. 3 CPU numbers),
//! plus two *paired* interleaved studies (see `crates/bench/README.md` for
//! the methodology):
//!
//! * the EP engine-farm scaling study — sequential vs multi-threaded
//!   sweeps on a 64-site model (`ep_farm_speedup_*`);
//! * the warm-vs-cold corrector study — incremental warm-started chained
//!   correction vs the cold rebuild-per-chunk baseline on the fig6-style
//!   workload (`corrector_warm_speedup`). With `BENCH_GATE=1` the warm
//!   arm rides the same paired interval gate as `bench_json`'s
//!   `cold_over_warm` entry: the one-sided 99.5% interval on the mean
//!   per-pair cold/warm ratio must clear 1.11× — a CI sanity floor, far
//!   below the ≥3× the warm path actually delivers.

use bayesperf_bench::gate::GateConfig;
use bayesperf_core::corrector::{Corrector, CorrectorConfig};
use bayesperf_core::model::{build_chunk_model, ModelConfig};
use bayesperf_events::{Arch, Catalog};
use bayesperf_inference::{EpConfig, ExpectationPropagation, FnSite, Gaussian};
use bayesperf_simcpu::{pack_round_robin, MultiplexRun, Pmu, PmuConfig, Sample};
use bayesperf_workloads::kmeans;
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::{Duration, Instant};

fn chunk_fixture(cat: &Catalog) -> Vec<Vec<Sample>> {
    let mut truth = kmeans().instantiate(cat, 0);
    let pmu = Pmu::new(cat, PmuConfig::for_catalog(cat));
    let events = bayesperf_bench::derived_event_hpcs(cat);
    let schedule = pack_round_robin(cat, &events).unwrap();
    let run = pmu.run_multiplexed(&mut truth, &schedule, 4);
    run.windows.iter().map(|w| w.samples.clone()).collect()
}

/// A 64-site engine-farm model: 32 chained variables, one observation site
/// each, plus 31 pairwise coupling sites and one long-range site.
fn farm_model() -> ExpectationPropagation {
    let n = 32;
    let prior = vec![Gaussian::new(5.0, 50.0); n];
    let mut ep = ExpectationPropagation::new(prior, EpConfig::default());
    for v in 0..n {
        let center = 2.0 + v as f64 * 0.25;
        ep.add_site(FnSite::new(vec![v], move |x: &[f64]| {
            Gaussian::new(center, 0.5).log_pdf(x[0])
        }));
    }
    for v in 0..n - 1 {
        ep.add_site(FnSite::new(vec![v, v + 1], |x: &[f64]| {
            Gaussian::new(0.25, 0.1).log_pdf(x[1] - x[0])
        }));
    }
    ep.add_site(FnSite::new(vec![0, n - 1], move |x: &[f64]| {
        Gaussian::new((n - 1) as f64 * 0.25, 1.0).log_pdf(x[1] - x[0])
    }));
    ep
}

fn bench_ep_chunk(c: &mut Criterion) {
    let cat = Catalog::new(Arch::X86SkyLake);
    let windows = chunk_fixture(&cat);
    let cfg = ModelConfig {
        cycles_per_window: 1.0e7,
        ..ModelConfig::for_run(
            &bayesperf_simcpu::Pmu::new(&cat, PmuConfig::for_catalog(&cat)).run_polling(
                &mut kmeans().instantiate(&cat, 0),
                &[],
                1,
            ),
        )
    };
    c.bench_function("ep_chunk_inference", |b| {
        b.iter(|| {
            let model = build_chunk_model(&cat, &windows, &cfg, None, cfg.fast_ep());
            let mut rng = StdRng::seed_from_u64(1);
            std::hint::black_box(model.run(&mut rng));
        })
    });
}

fn bench_corrector_run(c: &mut Criterion) {
    let cat = Catalog::new(Arch::X86SkyLake);
    let mut truth = kmeans().instantiate(&cat, 0);
    let pmu = Pmu::new(&cat, PmuConfig::for_catalog(&cat));
    let events = bayesperf_bench::derived_event_hpcs(&cat);
    let schedule = pack_round_robin(&cat, &events).unwrap();
    let run = pmu.run_multiplexed(&mut truth, &schedule, 8);
    c.bench_function("corrector_8_windows", |b| {
        b.iter(|| {
            let mut corrector = Corrector::new(&cat, CorrectorConfig::for_run(&run));
            std::hint::black_box(corrector.correct_run(&run));
        })
    });
    c.bench_function("corrector_8_windows_independent_4t", |b| {
        b.iter(|| {
            let cfg = CorrectorConfig::for_run(&run)
                .independent_chunks()
                .with_threads(4);
            let mut corrector = Corrector::new(&cat, cfg);
            std::hint::black_box(corrector.correct_run(&run));
        })
    });
}

fn bench_engine_farm(c: &mut Criterion) {
    c.bench_function("ep_farm_64sites_sequential", |b| {
        b.iter(|| std::hint::black_box(farm_model().run_parallel(1, 1)))
    });
    let hw = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let threads = hw.clamp(2, 8);
    c.bench_function("ep_farm_64sites_parallel", |b| {
        b.iter(|| std::hint::black_box(farm_model().run_parallel(1, threads)))
    });
    // Honor the same CLI name filter bench_function applies, so e.g.
    // `cargo bench ... ep_chunk_inference` doesn't pay for ~32 unrequested
    // farm runs.
    let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
    if filter.is_none_or(|f| "ep_farm_speedup".contains(f.as_str())) {
        report_paired_speedup(threads, hw);
    }
}

/// Paired interleaved speedup measurement on the shared
/// [`GateConfig::run_paired`] harness: alternate sequential and parallel
/// runs back to back so drift affects both arms equally, and report the
/// mean per-pair seq/par ratio with its Student-t interval. Report-only —
/// the trivially-true `>= 0` bound means the harness is used purely for
/// its interleaving and interval math, never to block.
fn report_paired_speedup(threads: usize, hw: usize) {
    let pairs = if std::env::var_os("BENCH_QUICK").is_some() {
        3
    } else {
        15
    };
    // One warm-up pair, discarded.
    let _ = time(|| farm_model().run_parallel(0, 1));
    let _ = time(|| farm_model().run_parallel(0, threads));
    // Per-arm pair counters: each arm runs once per pair, so both see the
    // same sweep seed within a pair (matched workloads, like the old loop).
    let mut p_seq = 0u64;
    let mut p_par = 0u64;
    let verdict = GateConfig::at_least("ep_farm_speedup", 0.0)
        .samples(pairs, pairs)
        .seed(0xFA12)
        .run_paired(
            || {
                let t = time(|| farm_model().run_parallel(p_par, threads));
                p_par += 1;
                t
            },
            || {
                let t = time(|| farm_model().run_parallel(p_seq, 1));
                p_seq += 1;
                t
            },
        );
    println!(
        "ep_farm_speedup_{threads}threads            ratio: [{:.2}x {:.2}x {:.2}x] \
         (paired, n={pairs}, {hw} hw threads)",
        verdict.lo, verdict.stat, verdict.hi,
    );
    if hw == 1 {
        println!(
            "    note: single-CPU host — parallel arm cannot exceed 1.0x here; \
             see crates/bench/README.md"
        );
    }
}

fn time<T>(f: impl FnOnce() -> T) -> f64 {
    let t = Instant::now();
    std::hint::black_box(f());
    t.elapsed().as_secs_f64()
}

fn bench_warm_vs_cold(c: &mut Criterion) {
    // Long enough that the one unavoidable cold chunk (chunk 0 warms the
    // engine up) stops dominating the per-window average — the quantity of
    // interest is the steady-state sliding-window cost.
    let n_windows = 96;
    let (cat, run) = bayesperf_bench::fig6_fixture(n_windows);
    c.bench_function("corrector_96w_chained_cold", |b| {
        b.iter(|| {
            let mut corrector = Corrector::new(&cat, CorrectorConfig::for_run(&run).cold_start());
            std::hint::black_box(corrector.correct_run(&run));
        })
    });
    c.bench_function("corrector_96w_chained_warm", |b| {
        b.iter(|| {
            let mut corrector = Corrector::new(&cat, CorrectorConfig::for_run(&run));
            std::hint::black_box(corrector.correct_run(&run));
        })
    });
    let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
    if filter.is_none_or(|f| "corrector_warm_speedup".contains(f.as_str())) {
        report_warm_speedup(&cat, &run, n_windows);
    }
}

/// Paired interleaved warm-vs-cold measurement on the shared
/// [`GateConfig::run_paired`] harness: run the cold rebuild-per-chunk
/// baseline and the warm-started incremental path back to back (seeded
/// coin-flip order inside each pair) on the same recorded run, and report
/// the mean per-pair ratio with its one-sided 99.5% Student-t interval
/// plus per-window times.
///
/// The warm arm measures the **steady state**: one persistent corrector
/// streams the run's chunks through [`Corrector::push_chunk`] without ever
/// resetting, so every measured chunk is warm-started — matching a
/// production monitor, where the single cold chunk at stream start
/// amortizes to nothing over an unbounded window stream. (The
/// `corrector_96w_chained_warm` criterion line above measures the same
/// path *including* that cold start, for comparison.)
///
/// `BENCH_GATE=1` turns the sanity floor (warm must finish in < 0.9× the
/// cold time) into a hard assertion for CI, decided on the interval via
/// [`bayesperf_bench::gate::GateVerdict::holds`] rather than a raw point
/// comparison.
fn report_warm_speedup(cat: &Catalog, run: &MultiplexRun, n_windows: usize) {
    let pairs = if std::env::var_os("BENCH_QUICK").is_some() {
        3
    } else {
        10
    };
    let windows: Vec<&[Sample]> = run.windows.iter().map(|w| w.samples.as_slice()).collect();
    let k = CorrectorConfig::for_run(run).model.slices.max(1);
    // Both arms must cover the same windows: the warm arm streams whole
    // chunks, so the fixture length must be chunk-aligned.
    assert_eq!(
        n_windows % k,
        0,
        "fixture windows must be a multiple of the chunk size"
    );
    let chunks: Vec<&[&[Sample]]> = windows.chunks(k).collect();
    let mut warm_corr = Corrector::new(cat, CorrectorConfig::for_run(run));
    // One cold corrector reused across pairs: cold mode carries no state
    // between calls, and constructing it outside the timed region keeps
    // engine construction out of both arms equally.
    let mut cold_corr = Corrector::new(cat, CorrectorConfig::for_run(run).cold_start());
    let mut cold_once = || {
        std::hint::black_box(cold_corr.correct_run(run));
    };
    let mut warm_once = || {
        for chunk in &chunks {
            std::hint::black_box(warm_corr.push_chunk(chunk));
        }
    };
    // One warm-up pair, discarded (this also takes the streaming corrector
    // past its cold first chunk).
    let _ = time(&mut cold_once);
    let _ = time(&mut warm_once);
    // Arm A is the warm baseline and arm B the cold candidate, so the gate
    // statistic is the mean per-pair cold/warm ratio — the speedup.
    let verdict = GateConfig::at_least("corrector_warm_speedup", 1.0 / 0.9)
        .samples(pairs, 2 * pairs)
        .seed(0xA1)
        .max_wall(Duration::from_secs(300))
        .run_paired(|| time(&mut warm_once) * 1e9, || time(&mut cold_once) * 1e9);
    let per_window = |mean_ns: f64| mean_ns / n_windows as f64;
    println!(
        "corrector_warm_speedup                  ratio: [{:.2}x {:.2}x {:.2}x] \
         (paired, n={}; cold {:.0} ns/window, warm {:.0} ns/window)",
        verdict.lo,
        verdict.stat,
        verdict.hi,
        verdict.n_a,
        per_window(verdict.mean_b),
        per_window(verdict.mean_a),
    );
    if std::env::var_os("BENCH_GATE").is_some() {
        assert!(
            verdict.holds(),
            "warm-start regression — {}",
            verdict.summary()
        );
        println!(
            "corrector_warm_speedup                  gate: {}",
            verdict.summary()
        );
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_ep_chunk, bench_corrector_run, bench_engine_farm, bench_warm_vs_cold
}
criterion_main!(benches);
