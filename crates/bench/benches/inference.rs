//! Criterion benches for the inference hot path (the Fig. 3 CPU numbers).

use bayesperf_core::corrector::{Corrector, CorrectorConfig};
use bayesperf_core::model::{build_chunk_model, ModelConfig};
use bayesperf_events::{Arch, Catalog};
use bayesperf_simcpu::{pack_round_robin, Pmu, PmuConfig, Sample};
use bayesperf_workloads::kmeans;
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn chunk_fixture(cat: &Catalog) -> Vec<Vec<Sample>> {
    let mut truth = kmeans().instantiate(cat, 0);
    let pmu = Pmu::new(cat, PmuConfig::for_catalog(cat));
    let events = bayesperf_bench::derived_event_hpcs(cat);
    let schedule = pack_round_robin(cat, &events).unwrap();
    let run = pmu.run_multiplexed(&mut truth, &schedule, 4);
    run.windows.iter().map(|w| w.samples.clone()).collect()
}

fn bench_ep_chunk(c: &mut Criterion) {
    let cat = Catalog::new(Arch::X86SkyLake);
    let windows = chunk_fixture(&cat);
    let cfg = ModelConfig {
        cycles_per_window: 1.0e7,
        ..ModelConfig::for_run(&bayesperf_simcpu::Pmu::new(&cat, PmuConfig::for_catalog(&cat))
            .run_polling(&mut kmeans().instantiate(&cat, 0), &[], 1))
    };
    c.bench_function("ep_chunk_inference", |b| {
        b.iter(|| {
            let model = build_chunk_model(&cat, &windows, &cfg, None, cfg.fast_ep());
            let mut rng = StdRng::seed_from_u64(1);
            std::hint::black_box(model.run(&mut rng));
        })
    });
}

fn bench_corrector_run(c: &mut Criterion) {
    let cat = Catalog::new(Arch::X86SkyLake);
    let mut truth = kmeans().instantiate(&cat, 0);
    let pmu = Pmu::new(&cat, PmuConfig::for_catalog(&cat));
    let events = bayesperf_bench::derived_event_hpcs(&cat);
    let schedule = pack_round_robin(&cat, &events).unwrap();
    let run = pmu.run_multiplexed(&mut truth, &schedule, 8);
    c.bench_function("corrector_8_windows", |b| {
        b.iter(|| {
            let corrector = Corrector::new(&cat, CorrectorConfig::for_run(&run));
            std::hint::black_box(corrector.correct_run(&run));
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_ep_chunk, bench_corrector_run
}
criterion_main!(benches);
