//! Statistical properties of the `bench::gate` decision rule on synthetic
//! noisy series, where the ground truth is known by construction:
//!
//! * **power** — a planted regression whose margin over the bound clearly
//!   exceeds the noise floor is always flagged as a confident
//!   [`Decision::Fail`] within the configured sample budget, under both
//!   interval methods and across generator seeds;
//! * **type-I error** — when the truth sits exactly on the bound, the
//!   confident-fail rate across seeds stays near the configured `α`
//!   (sequential peeking at every sample count inflates it somewhat, but
//!   it must stay an order of magnitude below a coin flip);
//! * **null safety** — when the truth sits comfortably inside the bound,
//!   the gate holds for every seed.
//!
//! The arms here are pure synthetic generators (Gaussian noise from the
//! workspace's own deterministic [`SiteRng`] streams), so these tests pin
//! the *decision rule*, independent of any real benchmark workload.

use bayesperf_bench::gate::{Decision, GateConfig};
use bayesperf_inference::SiteRng;
use proptest::prelude::*;
use rand::Rng;

/// One Gaussian draw via Box–Muller on the deterministic stream.
fn noisy(rng: &mut SiteRng, mean: f64, sd: f64) -> f64 {
    let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
    let u2: f64 = rng.gen();
    mean + sd * (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Runs one `at_most` ratio gate with baseline mean 100 and candidate mean
/// `100 * true_ratio`, both arms carrying `sd` absolute noise.
fn synthetic_gate(cfg: GateConfig, true_ratio: f64, sd: f64, seed: u64) -> Decision {
    let mut rng_a = SiteRng::for_site(seed, 0, 0);
    let mut rng_b = SiteRng::for_site(seed, 1, 0);
    cfg.run_ratio(
        || noisy(&mut rng_a, 100.0, sd),
        || noisy(&mut rng_b, 100.0 * true_ratio, sd),
    )
    .decision
}

proptest! {
    /// Power: a regression planted ≥ 10 percentage points past the bound,
    /// with per-arm noise at most 2% of the mean, is *always* a confident
    /// fail by the sample budget — no seed, noise level, or regression
    /// size in range may slip through as a pass or an inconclusive run.
    #[test]
    fn planted_regression_is_always_flagged(
        seed in 0u64..1 << 40,
        planted in 1.15f64..1.40,
        sd in 0.1f64..2.0,
    ) {
        let cfg = GateConfig::at_most("planted", 1.05)
            .samples(10, 60)
            .seed(seed ^ 0xF1A6);
        prop_assert_eq!(synthetic_gate(cfg, planted, sd, seed), Decision::Fail);
    }

    /// The same planted regression is flagged by the Bayesian credible
    /// interval too — the two methods must agree on clear-cut cases.
    #[test]
    fn planted_regression_is_flagged_bayesian(
        seed in 0u64..1 << 40,
        planted in 1.15f64..1.40,
        sd in 0.1f64..2.0,
    ) {
        let cfg = GateConfig::at_most("planted_bayes", 1.05)
            .samples(10, 60)
            .seed(seed ^ 0xBA1E)
            .bayesian();
        prop_assert_eq!(synthetic_gate(cfg, planted, sd, seed), Decision::Fail);
    }

    /// Null safety: with the truth well inside the bound and modest noise,
    /// the gate holds for every seed — noise alone can never block.
    #[test]
    fn clear_null_always_holds(seed in 0u64..1 << 40, sd in 0.1f64..2.0) {
        let cfg = GateConfig::at_most("clear_null", 1.10)
            .samples(10, 60)
            .seed(seed ^ 0xC1EA);
        let d = synthetic_gate(cfg, 1.0, sd, seed);
        prop_assert_ne!(d, Decision::Fail);
    }
}

/// Type-I error: the truth sits *exactly on* the bound, so any confident
/// fail is a false positive. The interval is recomputed at every sample
/// count past the floor (sequential peeking), which inflates the error
/// above the per-look `α = 0.005`; across 200 seeds the observed rate must
/// still stay within 5% — bounded, and nowhere near chance.
#[test]
fn null_false_positive_rate_is_bounded() {
    let trials = 200u64;
    let mut confident_fails = 0u32;
    for seed in 0..trials {
        let cfg = GateConfig::at_most("null_fp", 1.0)
            .samples(8, 24)
            .seed(seed ^ 0x0F9A);
        if synthetic_gate(cfg, 1.0, 1.5, 0x5EED0 + seed) == Decision::Fail {
            confident_fails += 1;
        }
    }
    let rate = f64::from(confident_fails) / trials as f64;
    assert!(
        rate <= 0.05,
        "false-positive rate {rate} ({confident_fails}/{trials}) above 5%"
    );
}

/// The exact-on-bound null is nearly always inconclusive at a finite
/// budget — and the default point-estimate policy then decides, so the
/// long-run hold rate sits near a coin flip rather than collapsing to
/// all-fail. This is the documented reason overhead bounds carry slack.
#[test]
fn on_bound_null_is_usually_inconclusive() {
    let trials = 100u64;
    let mut inconclusive = 0u32;
    for seed in 0..trials {
        let cfg = GateConfig::at_most("null_inc", 1.0)
            .samples(8, 24)
            .seed(seed ^ 0x1C05)
            .fail_closed();
        if synthetic_gate(cfg, 1.0, 1.5, 0xF00D + seed) == Decision::Inconclusive {
            inconclusive += 1;
        }
    }
    assert!(
        inconclusive >= 80,
        "expected the on-bound null to stay inconclusive, got {inconclusive}/{trials}"
    );
}
