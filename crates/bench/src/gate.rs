//! Statistically rigorous perf gates: interleaved A/B measurement with
//! Welch's-t (Behrens–Fisher) confidence intervals.
//!
//! # Why not a point threshold?
//!
//! A raw `assert!(candidate / baseline <= 0.9)` treats one noisy sample of
//! a wall-clock distribution as the truth. On a shared CI runner the
//! distribution is wide, so point-threshold gates either flake (bound set
//! tight) or stop guarding anything (bound set loose). The quantity a gate
//! actually cares about is the *difference of the two distributions'
//! means* — the [Behrens–Fisher problem] — and the honest answer to it is
//! a confidence interval, not a number (the `cbdr` method; see
//! `crates/bench/README.md`).
//!
//! This module runs the two arms **interleaved**: a seeded, deterministic
//! coin-flip schedule decides before every measurement whether the
//! baseline (arm A) or the candidate (arm B) runs next, so slow drift
//! (thermal, cache pressure, a neighbouring build job) lands on both arms
//! with equal probability and cancels out of the comparison instead of
//! masquerading as a regression. From the two sample sets it computes a
//! Welch's-t confidence interval for the **ratio of means** `B/A`
//! (difference-of-means interval normalized by the baseline mean), and the
//! gate passes or fails on the *interval bound*, never on the point
//! estimate.
//!
//! # The stopping rule
//!
//! Sampling proceeds until the first of:
//!
//! 1. **Decision** — both arms hold at least [`GateConfig::min_samples`]
//!    measurements *and* the interval clears the bound on one side
//!    (entirely below an `at_most` bound ⇒ [`Decision::Pass`], entirely
//!    above it ⇒ [`Decision::Fail`]); the minimum-sample floor stops a
//!    lucky early interval from ending the experiment;
//! 2. **Sample budget** — both arms hold [`GateConfig::max_samples`]
//!    measurements; or
//! 3. **Wall-clock budget** — [`GateConfig::max_wall`] has elapsed and
//!    both arms hold at least two measurements (the minimum from which an
//!    interval exists).
//!
//! A budget-terminated run whose interval still straddles the bound is
//! [`Decision::Inconclusive`]: the measurement was too noisy to call at
//! this budget. What an inconclusive verdict does to CI is policy
//! ([`GateConfig::on_inconclusive`]): the default passes iff the point
//! estimate is within the bound (noise alone never blocks a merge, and
//! the verdict records that the call was low-confidence), while
//! [`OnInconclusive::FailClosed`] demands a decisive interval.
//!
//! # Paired gates
//!
//! When the bound is tighter than the arms' run-to-run drift — a ≤ 2%
//! overhead cap on a workload whose wall time wanders by 10% between
//! passes — no amount of unpaired sampling resolves it. For those,
//! [`GateConfig::run_paired`] measures the arms in back-to-back *pairs*
//! (coin-flip order within each pair, a randomized-block design) and
//! gates the mean of **per-pair ratios** with a one-sample Student-t
//! interval: whatever drifts between pairs divides out inside each pair,
//! so the interval width tracks the within-pair noise — typically orders
//! of magnitude tighter.
//!
//! # The Bayesian variant
//!
//! [`Method::Bayesian`] reuses the repo's own measurement-correction
//! machinery instead of frequentist coverage: each arm's unknown mean gets
//! the Student-t marginal [`StudentT::posterior_of_mean`] (the same §4.2
//! posterior the corrector assigns to a noisy HPC), the two posteriors are
//! moment-matched to [`Gaussian`]s, and the ratio's posterior follows by
//! the first-order delta method. The reported `[lo, hi]` is then a
//! *credible* interval; with vague priors it agrees with Welch's-t to
//! first order, which is exactly why it is offered — the gate eats the
//! dog food without changing the menu.
//!
//! # Example
//!
//! ```
//! use bayesperf_bench::gate::{Decision, GateConfig};
//!
//! // Gate: the candidate may cost at most 1.10x the baseline. The
//! // closures stand in for timed measurement (here: canned samples).
//! let mut a = [100.0, 101.0, 99.0, 100.5, 99.5, 100.2].iter().cycle();
//! let mut b = [103.0, 104.0, 102.0, 103.5, 102.5, 103.2].iter().cycle();
//! let verdict = GateConfig::at_most("demo_overhead", 1.10)
//!     .samples(4, 16)
//!     .seed(7)
//!     .run_ratio(|| *a.next().unwrap(), || *b.next().unwrap());
//! assert_eq!(verdict.decision, Decision::Pass);
//! assert!(verdict.hi <= 1.10, "{}", verdict.summary());
//! ```

use bayesperf_inference::{derive_stream_seed, ln_gamma, Gaussian, StudentT};
use std::time::{Duration, Instant};

/// Which side of the bound the gated statistic must stay on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rel {
    /// The statistic must stay `<=` the bound (an overhead/regression cap).
    AtMost,
    /// The statistic must stay `>=` the bound (a speedup/margin floor).
    AtLeast,
}

/// Interval construction method.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// Welch's t confidence interval (Behrens–Fisher; no equal-variance
    /// assumption, Welch–Satterthwaite degrees of freedom).
    WelchT,
    /// Bayesian credible interval: per-arm [`StudentT::posterior_of_mean`]
    /// moment-matched to [`Gaussian`]s, ratio by the delta method. Falls
    /// back to [`Method::WelchT`] while either arm has fewer than four
    /// samples (the Student-t moments need ν > 2).
    Bayesian,
}

/// What an inconclusive (budget-exhausted, interval straddles the bound)
/// run means for [`GateVerdict::holds`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OnInconclusive {
    /// Hold iff the *point estimate* is within the bound. Noise alone
    /// cannot block a merge; the verdict still records low confidence.
    PointEstimate,
    /// Never hold: the gate demands a decisive interval at this budget.
    FailClosed,
}

/// The three-way outcome of a gate run.
///
/// ```
/// use bayesperf_bench::gate::{Decision, GateConfig, OnInconclusive};
/// use std::cell::Cell;
///
/// // A bound sitting in the middle of the noise stays inconclusive at
/// // any budget — and the fail-closed policy turns that into a failure.
/// let flip = Cell::new(0u32);
/// let verdict = GateConfig::at_most("coin", 1.0)
///     .samples(4, 12)
///     .fail_closed()
///     .run_ratio(
///         || f64::from(100 + flip.get() % 3),
///         || {
///             flip.set(flip.get() + 1);
///             f64::from(100 + flip.get() % 5)
///         },
///     );
/// assert_eq!(verdict.decision, Decision::Inconclusive);
/// assert!(!verdict.holds());
/// assert_eq!(verdict.config.on_inconclusive, OnInconclusive::FailClosed);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// The whole interval is on the allowed side of the bound.
    Pass,
    /// The whole interval is on the forbidden side of the bound.
    Fail,
    /// The interval straddles the bound at the configured budget.
    Inconclusive,
}

impl Decision {
    fn label(self) -> &'static str {
        match self {
            Decision::Pass => "pass",
            Decision::Fail => "fail",
            Decision::Inconclusive => "inconclusive",
        }
    }
}

/// Configuration for one statistical perf gate.
///
/// Construct with [`GateConfig::at_most`] / [`GateConfig::at_least`],
/// refine with the builder methods, then run with
/// [`GateConfig::run_ratio`] (two interleaved arms, gate on the ratio of
/// means) or [`GateConfig::run_level`] (one arm, gate on the mean against
/// an absolute bound).
///
/// ```
/// use bayesperf_bench::gate::{GateConfig, Method, Rel};
/// use std::time::Duration;
///
/// let cfg = GateConfig::at_least("warm_speedup", 1.2)
///     .samples(5, 30)
///     .alpha(0.01)
///     .max_wall(Duration::from_secs(30))
///     .bayesian();
/// assert_eq!(cfg.rel, Rel::AtLeast);
/// assert_eq!(cfg.method, Method::Bayesian);
/// assert_eq!(cfg.min_samples, 5);
/// ```
#[derive(Debug, Clone)]
pub struct GateConfig {
    /// Gate name (used in summaries, JSON, and assertion messages).
    pub name: &'static str,
    /// Side of the bound the statistic must stay on.
    pub rel: Rel,
    /// The bound itself (a ratio for [`GateConfig::run_ratio`], an
    /// absolute level for [`GateConfig::run_level`]).
    pub bound: f64,
    /// One-sided error rate of each interval bound. The reported
    /// `[lo, hi]` is the central `1 - 2α` interval, so each bound is a
    /// one-sided `1 - α` bound — the default `α = 0.005` makes a
    /// confident-fail a 1-in-200 event per gate under the null.
    pub alpha: f64,
    /// Minimum samples **per arm** before any decision is taken.
    pub min_samples: usize,
    /// Maximum samples per arm (the sample budget).
    pub max_samples: usize,
    /// Wall-clock budget for the whole gate run.
    pub max_wall: Duration,
    /// Seed of the deterministic coin-flip interleaving schedule.
    pub seed: u64,
    /// Interval construction method.
    pub method: Method,
    /// Policy for budget-exhausted, undecided runs.
    pub on_inconclusive: OnInconclusive,
}

impl GateConfig {
    fn new(name: &'static str, rel: Rel, bound: f64) -> Self {
        assert!(bound.is_finite(), "gate bound must be finite, got {bound}");
        GateConfig {
            name,
            rel,
            bound,
            alpha: 0.005,
            min_samples: 5,
            max_samples: 40,
            max_wall: Duration::from_secs(60),
            seed: 0x5EED,
            method: Method::WelchT,
            on_inconclusive: OnInconclusive::PointEstimate,
        }
    }

    /// A gate whose statistic must stay `<=` `bound`.
    pub fn at_most(name: &'static str, bound: f64) -> Self {
        GateConfig::new(name, Rel::AtMost, bound)
    }

    /// A gate whose statistic must stay `>=` `bound`.
    pub fn at_least(name: &'static str, bound: f64) -> Self {
        GateConfig::new(name, Rel::AtLeast, bound)
    }

    /// Sets the per-arm minimum and maximum sample counts.
    ///
    /// # Panics
    ///
    /// Panics if `min < 2` (no interval exists from one sample) or
    /// `max < min`.
    pub fn samples(mut self, min: usize, max: usize) -> Self {
        assert!(min >= 2, "need at least 2 samples per arm, got {min}");
        assert!(max >= min, "max_samples {max} < min_samples {min}");
        self.min_samples = min;
        self.max_samples = max;
        self
    }

    /// Sets the one-sided error rate α of each interval bound.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < alpha < 0.5`.
    pub fn alpha(mut self, alpha: f64) -> Self {
        assert!(
            alpha > 0.0 && alpha < 0.5,
            "alpha must be in (0, 0.5), got {alpha}"
        );
        self.alpha = alpha;
        self
    }

    /// Sets the wall-clock budget.
    pub fn max_wall(mut self, wall: Duration) -> Self {
        self.max_wall = wall;
        self
    }

    /// Sets the interleaving-schedule seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Switches to the Bayesian credible interval (see [`Method::Bayesian`]).
    pub fn bayesian(mut self) -> Self {
        self.method = Method::Bayesian;
        self
    }

    /// Makes inconclusive runs fail (see [`OnInconclusive::FailClosed`]).
    pub fn fail_closed(mut self) -> Self {
        self.on_inconclusive = OnInconclusive::FailClosed;
        self
    }

    /// Runs an interleaved two-arm gate on the **ratio of means** `B/A`.
    ///
    /// `arm_a` is the baseline, `arm_b` the candidate; each call must
    /// return one finite, positive measurement of its arm's statistic
    /// (wall-clock nanoseconds, bytes, a posterior spread — anything on a
    /// ratio scale). The caller does its own timing; the gate only decides
    /// *which* arm runs next (seeded coin flips) and *when to stop* (the
    /// module-level stopping rule).
    pub fn run_ratio<A, B>(&self, mut arm_a: A, mut arm_b: B) -> GateVerdict
    where
        A: FnMut() -> f64,
        B: FnMut() -> f64,
    {
        let start = Instant::now();
        let mut xs: Vec<f64> = Vec::new();
        let mut ys: Vec<f64> = Vec::new();
        let mut flip = 0usize;
        loop {
            let (na, nb) = (xs.len(), ys.len());
            if na >= 2 && nb >= 2 {
                let est = self.ratio_estimate(&xs, &ys);
                let min_met = na >= self.min_samples && nb >= self.min_samples;
                if min_met {
                    if let Some(d) = self.decide(est.lo, est.hi) {
                        return self.verdict(GateKind::Ratio, est, na, nb, d, start.elapsed());
                    }
                }
                let budget_hit = na >= self.max_samples && nb >= self.max_samples;
                if budget_hit || start.elapsed() >= self.max_wall {
                    return self.verdict(
                        GateKind::Ratio,
                        est,
                        na,
                        nb,
                        Decision::Inconclusive,
                        start.elapsed(),
                    );
                }
            }
            // Pick the next arm: starved arms (< 2 samples) and capped
            // arms override the coin so the run always terminates with
            // an interval in hand.
            let pick_a = if (na < 2 && nb >= 2) || nb >= self.max_samples {
                true
            } else if (nb < 2 && na >= 2) || na >= self.max_samples {
                false
            } else {
                derive_stream_seed(self.seed, flip) & 1 == 0
            };
            flip += 1;
            if pick_a {
                xs.push(checked_sample(self.name, "A", arm_a()));
            } else {
                ys.push(checked_sample(self.name, "B", arm_b()));
            }
        }
    }

    /// Runs a **paired** two-arm gate on the mean of per-pair ratios
    /// `B/A`: every sample is one back-to-back `(A, B)` pair, the seeded
    /// coin flip deciding which arm of the pair runs first. Drift that is
    /// slow against a pair's duration divides out inside each pair, so
    /// the Student-t interval on the mean ratio tracks within-pair noise
    /// only — use this when the bound is tighter than the arms'
    /// run-to-run drift (see the module-level *Paired gates* section).
    ///
    /// Sample counts satisfy `n_a == n_b` (= the number of pairs), and
    /// the stopping rule counts pairs.
    ///
    /// ```
    /// use bayesperf_bench::gate::{Decision, GateConfig};
    /// use std::cell::Cell;
    ///
    /// // A 2% overhead cap under 30% machine drift: unpaired arms could
    /// // never resolve this, but each pair shares its drift multiplier,
    /// // so the per-pair ratio is exactly 1.01 and the gate passes.
    /// let drift = Cell::new(0u32);
    /// let scale = || 100.0 * (1.0 + 0.3 * f64::from(drift.get() % 7) / 7.0);
    /// let v = GateConfig::at_most("paired_overhead", 1.02)
    ///     .samples(4, 16)
    ///     .run_paired(
    ///         || {
    ///             drift.set(drift.get() + 1);
    ///             scale()
    ///         },
    ///         || 1.01 * scale(),
    ///     );
    /// assert_eq!(v.decision, Decision::Pass);
    /// assert_eq!(v.n_a, v.n_b);
    /// assert!(v.hi <= 1.02, "{}", v.summary());
    /// ```
    pub fn run_paired<A, B>(&self, mut arm_a: A, mut arm_b: B) -> GateVerdict
    where
        A: FnMut() -> f64,
        B: FnMut() -> f64,
    {
        let start = Instant::now();
        let mut ratios: Vec<f64> = Vec::new();
        let mut sum_a = 0.0;
        let mut sum_b = 0.0;
        let mut flip = 0usize;
        loop {
            let n = ratios.len();
            if n >= 2 {
                let est = self.level_estimate(&ratios);
                let est = Estimate {
                    mean_a: sum_a / n as f64,
                    mean_b: sum_b / n as f64,
                    ..est
                };
                if n >= self.min_samples {
                    if let Some(d) = self.decide(est.lo, est.hi) {
                        return self.verdict(GateKind::Ratio, est, n, n, d, start.elapsed());
                    }
                }
                if n >= self.max_samples || start.elapsed() >= self.max_wall {
                    return self.verdict(
                        GateKind::Ratio,
                        est,
                        n,
                        n,
                        Decision::Inconclusive,
                        start.elapsed(),
                    );
                }
            }
            let a_first = derive_stream_seed(self.seed, flip) & 1 == 0;
            flip += 1;
            let (a, b) = if a_first {
                let a = checked_sample(self.name, "A", arm_a());
                (a, checked_sample(self.name, "B", arm_b()))
            } else {
                let b = checked_sample(self.name, "B", arm_b());
                (checked_sample(self.name, "A", arm_a()), b)
            };
            sum_a += a;
            sum_b += b;
            ratios.push(b / a.max(f64::MIN_POSITIVE));
        }
    }

    /// Runs a one-arm gate on the **mean** of a statistic against an
    /// absolute bound (a Student-t interval on the mean; the Bayesian
    /// method uses the same Student-t as the §4.2 posterior of the mean,
    /// so the two coincide here by construction).
    ///
    /// For quantities with a natural baseline arm prefer
    /// [`GateConfig::run_ratio`] — a level gate cannot cancel machine
    /// drift the way interleaving does, so reserve it for statistics with
    /// absolute meaning (a recovery deadline, a staleness budget).
    pub fn run_level<F>(&self, mut sample: F) -> GateVerdict
    where
        F: FnMut() -> f64,
    {
        let start = Instant::now();
        let mut xs: Vec<f64> = Vec::new();
        loop {
            let n = xs.len();
            if n >= 2 {
                let est = self.level_estimate(&xs);
                if n >= self.min_samples {
                    if let Some(d) = self.decide(est.lo, est.hi) {
                        return self.verdict(GateKind::Level, est, n, 0, d, start.elapsed());
                    }
                }
                if n >= self.max_samples || start.elapsed() >= self.max_wall {
                    return self.verdict(
                        GateKind::Level,
                        est,
                        n,
                        0,
                        Decision::Inconclusive,
                        start.elapsed(),
                    );
                }
            }
            xs.push(checked_sample(self.name, "A", sample()));
        }
    }

    /// `Some(Pass | Fail)` when the interval clears the bound, else `None`.
    fn decide(&self, lo: f64, hi: f64) -> Option<Decision> {
        match self.rel {
            Rel::AtMost if hi <= self.bound => Some(Decision::Pass),
            Rel::AtMost if lo > self.bound => Some(Decision::Fail),
            Rel::AtLeast if lo >= self.bound => Some(Decision::Pass),
            Rel::AtLeast if hi < self.bound => Some(Decision::Fail),
            _ => None,
        }
    }

    fn ratio_estimate(&self, xs: &[f64], ys: &[f64]) -> Estimate {
        let (ma, va, na) = moments(xs);
        let (mb, vb, nb) = moments(ys);
        let denom = ma.max(f64::MIN_POSITIVE);
        let stat = mb / denom;
        let (lo, hi) = match self.method {
            Method::Bayesian if na >= 4 && nb >= 4 => {
                // Moment-match each arm's Student-t mean posterior to a
                // Gaussian, then the ratio posterior by the delta method —
                // the same Gaussian fusion the corrector runs on HPCs.
                let ga = gaussian_of_mean(ma, va, na);
                let gb = gaussian_of_mean(mb, vb, nb);
                let var = (gb.var + stat * stat * ga.var) / (denom * denom);
                Gaussian::new(stat, var.max(f64::MIN_POSITIVE))
                    .interval(normal_quantile(1.0 - self.alpha))
            }
            _ => {
                // Welch's t on the difference of means, normalized by the
                // baseline mean (the cbdr percentage construction).
                let (sea, seb) = (va / na as f64, vb / nb as f64);
                let se = (sea + seb).sqrt();
                if se == 0.0 {
                    (stat, stat)
                } else {
                    let dof = (sea + seb) * (sea + seb)
                        / (sea * sea / (na as f64 - 1.0) + seb * seb / (nb as f64 - 1.0));
                    let h = t_quantile(1.0 - self.alpha, dof) * se / denom;
                    (stat - h, stat + h)
                }
            }
        };
        Estimate {
            stat,
            lo,
            hi,
            mean_a: ma,
            mean_b: mb,
        }
    }

    fn level_estimate(&self, xs: &[f64]) -> Estimate {
        let (m, v, n) = moments(xs);
        let se = (v / n as f64).sqrt();
        let (lo, hi) = if se == 0.0 {
            (m, m)
        } else {
            // One-sample Student-t interval — identical to the credible
            // interval of `StudentT::posterior_of_mean` under the
            // reference prior, so Welch-T and Bayesian agree exactly.
            let t = StudentT::posterior_of_mean(m, v.sqrt(), n);
            let h = t_quantile(1.0 - self.alpha, t.dof) * t.scale;
            (m - h, m + h)
        };
        Estimate {
            stat: m,
            lo,
            hi,
            mean_a: m,
            mean_b: f64::NAN,
        }
    }

    fn verdict(
        &self,
        kind: GateKind,
        est: Estimate,
        n_a: usize,
        n_b: usize,
        decision: Decision,
        elapsed: Duration,
    ) -> GateVerdict {
        GateVerdict {
            config: self.clone(),
            kind,
            stat: est.stat,
            lo: est.lo,
            hi: est.hi,
            mean_a: est.mean_a,
            mean_b: est.mean_b,
            n_a,
            n_b,
            decision,
            elapsed,
        }
    }
}

/// Whether a verdict gates a two-arm ratio or a one-arm level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GateKind {
    /// Two interleaved arms, statistic = ratio of means `B/A`.
    Ratio,
    /// One arm, statistic = mean, absolute bound.
    Level,
}

struct Estimate {
    stat: f64,
    lo: f64,
    hi: f64,
    mean_a: f64,
    mean_b: f64,
}

/// The outcome of one gate run: the point estimate, its `[lo, hi]`
/// interval, per-arm sample counts and means, and the three-way decision.
///
/// ```
/// use bayesperf_bench::gate::{Decision, GateConfig, GateKind};
///
/// // A recovery deadline: the mean cycle must stay under 100 (it does —
/// // the samples sit near 40, so the interval clears the bound early).
/// let mut cycle = [38.0, 42.0, 40.0, 41.0, 39.0, 40.5].iter().cycle();
/// let v = GateConfig::at_most("restart_deadline", 100.0)
///     .samples(5, 30)
///     .run_level(|| *cycle.next().unwrap());
/// assert_eq!(v.kind, GateKind::Level);
/// assert_eq!(v.decision, Decision::Pass);
/// assert!(v.holds() && v.lo <= v.stat && v.stat <= v.hi);
/// assert_eq!(v.n_a, 5); // decided at the minimum-sample floor
/// // The one-line report and the JSON fragment carry the same numbers.
/// assert!(v.summary().contains("pass"));
/// assert!(v.json().contains("\"verdict\": \"pass\""));
/// ```
#[derive(Debug, Clone)]
pub struct GateVerdict {
    /// The configuration that produced this verdict.
    pub config: GateConfig,
    /// Ratio or level gate.
    pub kind: GateKind,
    /// Point estimate (ratio of means `B/A`, or the mean for level gates).
    pub stat: f64,
    /// Lower bound of the central `1 - 2α` interval.
    pub lo: f64,
    /// Upper bound of the central `1 - 2α` interval.
    pub hi: f64,
    /// Mean of arm A (the baseline; for level gates, the gated mean).
    pub mean_a: f64,
    /// Mean of arm B (the candidate; `NaN` for level gates).
    pub mean_b: f64,
    /// Samples taken from arm A.
    pub n_a: usize,
    /// Samples taken from arm B (`0` for level gates).
    pub n_b: usize,
    /// The three-way outcome.
    pub decision: Decision,
    /// Wall clock the gate run consumed.
    pub elapsed: Duration,
}

impl GateVerdict {
    /// Whether CI should treat this verdict as a pass: [`Decision::Pass`]
    /// holds, [`Decision::Fail`] does not, and [`Decision::Inconclusive`]
    /// defers to [`GateConfig::on_inconclusive`].
    pub fn holds(&self) -> bool {
        match self.decision {
            Decision::Pass => true,
            Decision::Fail => false,
            Decision::Inconclusive => match self.config.on_inconclusive {
                OnInconclusive::FailClosed => false,
                OnInconclusive::PointEstimate => match self.config.rel {
                    Rel::AtMost => self.stat <= self.config.bound,
                    Rel::AtLeast => self.stat >= self.config.bound,
                },
            },
        }
    }

    /// One-line human report, suitable for a CI log or an assert message.
    pub fn summary(&self) -> String {
        let rel = match self.config.rel {
            Rel::AtMost => "<=",
            Rel::AtLeast => ">=",
        };
        let arms = match self.kind {
            GateKind::Ratio => format!("n={}/{}", self.n_a, self.n_b),
            GateKind::Level => format!("n={}", self.n_a),
        };
        format!(
            "{}: {} in [{}, {}] must stay {rel} {} ({arms}, one-sided alpha {}) -> {}",
            self.config.name,
            trim(self.stat),
            trim(self.lo),
            trim(self.hi),
            trim(self.config.bound),
            self.config.alpha,
            self.decision.label(),
        )
    }

    /// The verdict as a `BENCH_inference.json` gate object: point
    /// estimate, `[lo, hi]`, per-arm sample counts, the bound, and the
    /// decision — the fields every perf-trajectory entry carries.
    pub fn json(&self) -> String {
        let rel = match self.config.rel {
            Rel::AtMost => "<=",
            Rel::AtLeast => ">=",
        };
        format!(
            r#"{{ "stat": {}, "lo": {}, "hi": {}, "n_a": {}, "n_b": {}, "rel": "{rel}", "bound": {}, "alpha": {}, "verdict": "{}" }}"#,
            trim(self.stat),
            trim(self.lo),
            trim(self.hi),
            self.n_a,
            self.n_b,
            trim(self.config.bound),
            self.config.alpha,
            self.decision.label(),
        )
    }
}

/// Compact but lossless-enough float formatting for summaries and JSON:
/// six significant decimals, no exponent (these are ratios, nanoseconds
/// and byte counts — all comfortably in fixed range).
fn trim(x: f64) -> String {
    let s = format!("{x:.6}");
    let s = s.trim_end_matches('0').trim_end_matches('.');
    if s.is_empty() || s == "-" {
        "0".into()
    } else {
        s.into()
    }
}

fn checked_sample(gate: &str, arm: &str, v: f64) -> f64 {
    assert!(
        v.is_finite() && v >= 0.0,
        "gate {gate}: arm {arm} produced a non-finite or negative sample ({v})"
    );
    v
}

/// Sample mean, unbiased variance, and count.
fn moments(xs: &[f64]) -> (f64, f64, usize) {
    let n = xs.len();
    let mean = xs.iter().sum::<f64>() / n as f64;
    let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n as f64 - 1.0).max(1.0);
    (mean, var, n)
}

/// The Student-t mean posterior moment-matched to a Gaussian (needs
/// `n >= 4` so ν > 2 and the variance exists).
fn gaussian_of_mean(mean: f64, var: f64, n: usize) -> Gaussian {
    let t = StudentT::posterior_of_mean(mean, var.sqrt(), n);
    let v = t.variance().expect("n >= 4 implies dof > 2");
    Gaussian::new(t.mean(), v.max(f64::MIN_POSITIVE))
}

/// Regularized incomplete beta function `I_x(a, b)` (continued fraction,
/// Lentz's method — Numerical Recipes §6.4).
fn reg_inc_beta(a: f64, b: f64, x: f64) -> f64 {
    if x <= 0.0 {
        return 0.0;
    }
    if x >= 1.0 {
        return 1.0;
    }
    let ln_front = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    let front = ln_front.exp();
    if x < (a + 1.0) / (a + b + 2.0) {
        front * beta_cf(a, b, x) / a
    } else {
        1.0 - front * beta_cf(b, a, 1.0 - x) / b
    }
}

fn beta_cf(a: f64, b: f64, x: f64) -> f64 {
    const TINY: f64 = 1e-300;
    const EPS: f64 = 1e-14;
    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < TINY {
        d = TINY;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=300 {
        let m = m as f64;
        let m2 = 2.0 * m;
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        h *= d * c;
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

/// CDF of the standard Student-t with `dof` degrees of freedom.
fn t_cdf(t: f64, dof: f64) -> f64 {
    let x = dof / (dof + t * t);
    let tail = 0.5 * reg_inc_beta(0.5 * dof, 0.5, x);
    if t >= 0.0 {
        1.0 - tail
    } else {
        tail
    }
}

/// Upper quantile of the Student-t: the `t` with `P(T <= t) = p`, for
/// `p in [0.5, 1)`. Monotone bisection on the CDF — a perf gate computes
/// this a handful of times per run, so robustness beats speed.
fn t_quantile(p: f64, dof: f64) -> f64 {
    assert!((0.5..1.0).contains(&p), "p must be in [0.5, 1), got {p}");
    assert!(dof > 0.0, "dof must be positive, got {dof}");
    if p == 0.5 {
        return 0.0;
    }
    let mut hi = 1.0;
    while t_cdf(hi, dof) < p {
        hi *= 2.0;
        if hi > 1e12 {
            return hi; // p astronomically close to 1 at tiny dof
        }
    }
    let mut lo = 0.0;
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if t_cdf(mid, dof) < p {
            lo = mid;
        } else {
            hi = mid;
        }
        if hi - lo < 1e-10 * (1.0 + hi) {
            break;
        }
    }
    0.5 * (lo + hi)
}

/// Inverse standard-normal CDF (Acklam's rational approximation,
/// |relative error| < 1.15e-9 — far below gate resolution).
fn normal_quantile(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "p must be in (0, 1), got {p}");
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.38357751867269e+02,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;
    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        -normal_quantile(1.0 - p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paired_gate_cancels_between_pair_drift() {
        // Arm times wander by 3x across pairs (a drift no unpaired gate
        // could see through), but within a pair the candidate is always
        // exactly 0.8x the baseline — the paired ratio interval collapses
        // onto 0.8 and the gate decides at the minimum pair count.
        use std::cell::Cell;
        // Both arms key their drift multiplier off the *pair* index
        // (call_count / 2), so the multiplier changes between pairs but
        // is shared within one regardless of coin-flip order.
        let calls = Cell::new(0u32);
        let scale = |k: u32| 100.0 * (1.0 + 2.0 * f64::from((k / 2) % 5) / 5.0);
        let v = GateConfig::at_most("paired_drift", 0.9)
            .samples(4, 10)
            .run_paired(
                || {
                    let k = calls.get();
                    calls.set(k + 1);
                    scale(k)
                },
                || {
                    let k = calls.get();
                    calls.set(k + 1);
                    0.8 * scale(k)
                },
            );
        assert_eq!(v.decision, Decision::Pass, "{}", v.summary());
        assert_eq!((v.n_a, v.n_b), (4, 4));
        assert!((v.stat - 0.8).abs() < 1e-12, "{}", v.summary());
        assert!(v.hi - v.lo < 1e-9, "paired interval must be tight");
        // The per-arm means still report the raw (drifting) magnitudes.
        assert!(v.mean_a > 100.0 && v.mean_b < v.mean_a);
    }

    #[test]
    fn paired_gate_orders_arms_by_coin_flip() {
        use std::cell::RefCell;
        let mut firsts = Vec::new();
        for seed in 0..4 {
            let order = RefCell::new(Vec::new());
            let cfg = GateConfig::at_most("paired_order", 10.0)
                .samples(4, 4)
                .seed(seed);
            let _ = cfg.run_paired(
                || {
                    order.borrow_mut().push('a');
                    1.0
                },
                || {
                    order.borrow_mut().push('b');
                    1.0
                },
            );
            let order = order.into_inner();
            // Every adjacent pair holds exactly one call of each arm.
            assert_eq!(order.len(), 8);
            for c in order.chunks(2) {
                assert_ne!(c[0], c[1], "seed {seed}: pair ran one arm twice");
                firsts.push(c[0]);
            }
        }
        // Across seeds the coin lands both ways — the order really is
        // randomized, not a fixed A-then-B convention.
        assert!(firsts.contains(&'a') && firsts.contains(&'b'));
    }

    #[test]
    fn t_quantile_matches_tables() {
        // Classic table values (two-sided 95% -> p = 0.975).
        for (p, dof, expect) in [
            (0.975, 10.0, 2.2281),
            (0.995, 7.0, 3.4995),
            (0.95, 4.0, 2.1318),
            (0.975, 1.0, 12.7062),
            (0.975, 10_000.0, 1.9602),
        ] {
            let got = t_quantile(p, dof);
            assert!(
                (got - expect).abs() < 2e-3,
                "t({p}, {dof}) = {got}, want {expect}"
            );
        }
    }

    #[test]
    fn normal_quantile_matches_tables() {
        for (p, expect) in [(0.975, 1.959964), (0.995, 2.575829), (0.5, 0.0)] {
            assert!((normal_quantile(p) - expect).abs() < 1e-6);
        }
        assert!((normal_quantile(0.025) + 1.959964).abs() < 1e-6);
    }

    #[test]
    fn reg_inc_beta_uniform_case() {
        // I_x(1, 1) is the identity.
        for x in [0.1, 0.25, 0.5, 0.9] {
            assert!((reg_inc_beta(1.0, 1.0, x) - x).abs() < 1e-12);
        }
    }

    #[test]
    fn t_cdf_symmetry() {
        for dof in [1.0, 3.0, 9.5, 50.0] {
            for t in [0.3, 1.0, 2.5] {
                let s = t_cdf(t, dof) + t_cdf(-t, dof);
                assert!((s - 1.0).abs() < 1e-12, "dof {dof} t {t}: {s}");
            }
        }
    }

    #[test]
    fn identical_arms_are_inconclusive_or_pass_at_loose_bound() {
        let mut a = [10.0, 11.0, 9.0, 10.5, 9.5].iter().cycle();
        let mut b = [10.0, 11.0, 9.0, 10.5, 9.5].iter().cycle();
        let v = GateConfig::at_most("null", 1.5)
            .samples(4, 12)
            .run_ratio(|| *a.next().unwrap(), || *b.next().unwrap());
        assert_eq!(v.decision, Decision::Pass, "{}", v.summary());
    }

    #[test]
    fn planted_regression_fails() {
        let mut a = [100.0, 101.0, 99.0, 100.0].iter().cycle();
        let mut b = [150.0, 151.0, 149.0, 150.0].iter().cycle();
        let v = GateConfig::at_most("regress", 1.1)
            .samples(4, 20)
            .run_ratio(|| *a.next().unwrap(), || *b.next().unwrap());
        assert_eq!(v.decision, Decision::Fail, "{}", v.summary());
        assert!(!v.holds());
    }

    #[test]
    fn zero_variance_arms_degenerate_interval() {
        let v = GateConfig::at_most("const", 2.0)
            .samples(3, 6)
            .run_ratio(|| 10.0, || 15.0);
        assert_eq!(v.decision, Decision::Pass);
        assert_eq!(v.lo, v.hi);
        assert!((v.stat - 1.5).abs() < 1e-12);
    }

    #[test]
    fn bayesian_and_welch_agree_to_first_order() {
        let data_a = [100.0, 102.0, 98.0, 101.0, 99.0, 100.5, 99.5, 101.5];
        let data_b = [110.0, 112.0, 108.0, 111.0, 109.0, 110.5, 109.5, 111.5];
        let mut a = data_a.iter().cycle();
        let mut b = data_b.iter().cycle();
        let w = GateConfig::at_most("w", 1.5)
            .samples(8, 8)
            .run_ratio(|| *a.next().unwrap(), || *b.next().unwrap());
        let mut a = data_a.iter().cycle();
        let mut b = data_b.iter().cycle();
        let bay = GateConfig::at_most("b", 1.5)
            .samples(8, 8)
            .bayesian()
            .run_ratio(|| *a.next().unwrap(), || *b.next().unwrap());
        assert!((w.stat - bay.stat).abs() < 1e-9);
        // Same ballpark of uncertainty (the t quantile is larger but the
        // Student-t moment matching inflates the Gaussian variance, so
        // neither construction dominates; they agree to first order).
        let ww = w.hi - w.lo;
        let bw = bay.hi - bay.lo;
        assert!(
            bw > 0.0 && bw > 0.5 * ww && bw < 2.0 * ww,
            "welch {ww} bayes {bw}"
        );
    }

    #[test]
    fn level_gate_decides_on_interval_not_point() {
        // Mean 40 against a bound of 100: decisive pass at the floor.
        let mut s = [38.0, 42.0, 40.0, 41.0, 39.0].iter().cycle();
        let v = GateConfig::at_most("deadline", 100.0)
            .samples(5, 30)
            .run_level(|| *s.next().unwrap());
        assert_eq!(v.decision, Decision::Pass);
        assert_eq!((v.n_a, v.n_b), (5, 0));
        assert_eq!(v.kind, GateKind::Level);
    }

    #[test]
    fn interleaving_schedule_is_deterministic() {
        let order_of = |seed: u64| {
            let order = std::cell::RefCell::new(Vec::new());
            let mut a = [10.0, 10.5].iter().cycle();
            let mut b = [10.2, 10.1].iter().cycle();
            let cfg = GateConfig::at_most("sched", 5.0).samples(6, 6).seed(seed);
            let _ = cfg.run_ratio(
                || {
                    order.borrow_mut().push('a');
                    *a.next().unwrap()
                },
                || {
                    order.borrow_mut().push('b');
                    *b.next().unwrap()
                },
            );
            order.into_inner()
        };
        assert_eq!(order_of(1), order_of(1));
        assert_ne!(order_of(1), order_of(2), "seed must steer the schedule");
    }

    #[test]
    fn wall_clock_budget_stops_the_run() {
        let calls = std::cell::Cell::new(0u64);
        let v = GateConfig::at_most("wall", 1.0)
            .samples(2, usize::MAX)
            .max_wall(Duration::from_millis(20))
            .run_ratio(
                || {
                    std::thread::sleep(Duration::from_millis(1));
                    10.0 + (calls.get() % 7) as f64
                },
                || {
                    calls.set(calls.get() + 1);
                    std::thread::sleep(Duration::from_millis(1));
                    10.0 + (calls.get() % 5) as f64
                },
            );
        assert!(v.elapsed < Duration::from_secs(5));
        assert!(v.n_a >= 2 && v.n_b >= 2);
    }

    #[test]
    fn summary_and_json_round_trip_the_decision() {
        let v = GateConfig::at_least("speedup", 1.2)
            .samples(3, 6)
            .run_ratio(|| 100.0, || 300.0);
        assert_eq!(v.decision, Decision::Pass);
        assert!(v.summary().contains("speedup"));
        assert!(v.json().contains(r#""rel": ">=""#));
        assert!(v.json().contains(r#""verdict": "pass""#));
    }
}
