//! Table 1: area and power of the BayesPerf FPGA for the x86_64 and ppc64
//! configurations.

use bayesperf_accel::{area_power, AccelConfig, FpgaPart};

fn main() {
    let part = FpgaPart::vu3p();
    println!(
        "# Table 1: FPGA utilization (%) and power (W) on {}",
        part.name
    );
    println!("component\tBRAM\tDSP\tFF\tLUT\tURAM\tVivado_W\tMeasured_W");
    for (name, cfg) in [
        ("x86-PCIe", AccelConfig::x86()),
        ("ppc64-CAPI", AccelConfig::ppc64()),
    ] {
        let r = area_power(&cfg, &part);
        println!(
            "{name}\t{:.0}\t{:.0}\t{:.0}\t{:.0}\t{:.0}\t{:.1}\t{:.1}",
            r.bram_pct,
            r.dsp_pct,
            r.ff_pct,
            r.lut_pct,
            r.uram_pct,
            r.vivado_power_w,
            r.measured_power_w
        );
    }
    let x86 = area_power(&AccelConfig::x86(), &part);
    let ppc = area_power(&AccelConfig::ppc64(), &part);
    println!();
    println!(
        "# power reduction vs host TDP: {:.1}x (x86, 100 W), {:.1}x (ppc64, 190 W); paper: 5.8x / 11.8x",
        x86.power_reduction_vs(100.0),
        ppc.power_reduction_vs(190.0)
    );
}
