//! Fig. 6: error in performance-counter measurements across the HiBench
//! benchmarks, for Linux / CounterMiner / BayesPerf on x86 and ppc64.

use bayesperf_bench::{derived_event_hpcs, evaluate_workload, EvalConfig};
use bayesperf_events::{Arch, Catalog};
use bayesperf_workloads::all_workloads;

fn main() {
    let cfg = EvalConfig::default();
    let cats: Vec<Catalog> = Arch::all().iter().map(|&a| Catalog::new(a)).collect();
    println!("# Fig. 6: average HPC measurement error (%) across HiBench workloads");
    println!(
        "workload\tLinux(x86)\tLinux(ppc64)\tCM(x86)\tCM(ppc64)\tBayesPerf(x86)\tBayesPerf(ppc64)"
    );
    let mut sums = [0.0f64; 6];
    let workloads = all_workloads();
    for w in &workloads {
        let mut row = vec![w.name().to_string()];
        let mut cells = [0.0f64; 6];
        for (ai, cat) in cats.iter().enumerate() {
            let events = derived_event_hpcs(cat);
            let e = evaluate_workload(cat, w, &events, &cfg);
            cells[ai] = e.linux;
            cells[2 + ai] = e.cm;
            cells[4 + ai] = e.bayesperf;
        }
        for (i, c) in cells.iter().enumerate() {
            sums[i] += c / workloads.len() as f64;
            row.push(format!("{c:.1}"));
        }
        println!("{}", row.join("\t"));
    }
    println!(
        "Average\t{:.1}\t{:.1}\t{:.1}\t{:.1}\t{:.1}\t{:.1}",
        sums[0], sums[1], sums[2], sums[3], sums[4], sums[5]
    );
    println!();
    println!(
        "# error reduction BayesPerf vs Linux: {:.2}x (x86), {:.2}x (ppc64); paper: 4.87x / 5.28x",
        sums[0] / sums[4],
        sums[1] / sums[5]
    );
    println!(
        "# error reduction BayesPerf vs CM: {:.2}x (x86), {:.2}x (ppc64); paper: 3.63x / 3.73x",
        sums[2] / sums[4],
        sums[3] / sums[5]
    );
}
