//! Machine-readable inference perf baseline: runs the warm-vs-cold paired
//! corrector benchmark on the fig6-style workload and writes
//! `BENCH_inference.json` — the trajectory file future PRs diff their hot
//! path against.
//!
//! The warm arm measures the **steady state**: one persistent corrector
//! streams the run's chunks through `push_chunk` without resetting, so
//! every measured chunk is warm-started (production monitors run
//! unbounded streams; the single cold chunk at startup amortizes away).
//! The cold arm is the pre-incremental baseline: rebuild + cold EP per
//! chunk.
//!
//! Schema (all times wall-clock, single process, fixed seeds):
//!
//! ```json
//! {
//!   "bench": "inference_warm_vs_cold",
//!   "workload": "kmeans",
//!   "windows": 96,
//!   "chunk_slices": 6,
//!   "pairs": 10,
//!   "cold": { "ns_per_window": 0.0, "sweeps_per_chunk": 0.0,
//!             "mcmc_samples_per_site_update": 0.0, "mcmc_samples_total": 0 },
//!   "warm": { "ns_per_window": 0.0, "sweeps_per_chunk": 0.0,
//!             "mcmc_samples_per_site_update": 0.0, "mcmc_samples_total": 0,
//!             "jump_site_resets": 0 },
//!   "speedup": { "mean": 0.0, "ci95_lo": 0.0, "ci95_hi": 0.0 },
//!   "shim_read": { "reads": 0, "p50_ns": 0.0, "p99_ns": 0.0,
//!                  "warm_push_chunk_ns": 0.0, "push_over_p99_read": 0.0 },
//!   "fleet_read": { "shards": 8, "reads": 0, "p50_ns": 0.0, "p99_ns": 0.0,
//!                   "vs_shim_p99": 0.0 },
//!   "fleet_scrape": { "shards": 8, "passes": 0, "ns_per_pass": 0.0,
//!                     "ns_per_shard": 0.0, "bytes_per_pass": 0 },
//!   "fleet_scrape_net": { "shards": 32, "rounds": 0,
//!                         "active_ns_per_round": 0.0, "idle_ns_per_round": 0.0,
//!                         "active_bytes": 0, "idle_bytes": 0,
//!                         "delta_byte_ratio": 0.0, "lossy_drop_prob": 0.1,
//!                         "staleness_p99_rounds": 0 },
//!   "mux_schedule": { "groups": 3, "bound": 6, "windows": 0, "decisions": 0,
//!                     "decide_p50_ns": 0.0, "decide_p99_ns": 0.0,
//!                     "rr_mean_rel_var": 0.0, "ud_mean_rel_var": 0.0,
//!                     "variance_ratio": 0.0 },
//!   "supervised_recovery": { "cycles": 30, "restart_p50_ns": 0.0,
//!                            "restart_p99_ns": 0.0, "reads_during_recovery": 0,
//!                            "read_failures": 0, "guard_ns_per_window": 0.0,
//!                            "guard_over_warm": 0.0 },
//!   "multi_source_fuse": { "windows": 18, "sources": 4,
//!                          "pmu_only_ns_per_window": 0.0,
//!                          "fused_ns_per_window": 0.0, "fuse_overhead": 0.0,
//!                          "pmu_only_gauge_sd": 0.0, "fused_gauge_sd": 0.0,
//!                          "rel_variance_ratio": 0.0 },
//!   "obs_overhead": { "pairs": 10, "bare_ns_per_window": 0.0,
//!                     "instrumented_ns_per_window": 0.0,
//!                     "instrumented_over_bare": 0.0 }
//! }
//! ```
//!
//! `shim_read` measures `Session::read` against a live monitor (the Fig. 3
//! read path: lock-free snapshot, zero inference); with `BENCH_GATE=1` the
//! p99 read must be at least 10x cheaper than one warm `push_chunk`.
//!
//! `fleet_read` measures `FleetSession::read` against a live 8-shard
//! fleet: a fused read is one acquisition of the fleet's snapshot cell,
//! so it must stay within 5x of the single-session p99 (the `BENCH_GATE`
//! assertion — shard count must not leak into the read path).
//! `fleet_scrape` measures one full scrape-over-the-wire pass: snapshot,
//! varint encode, decode, and precision-weighted fusion across all 8
//! shards.
//!
//! `fleet_scrape_net` measures the networked scrape plane (`fleet::net`):
//! a `FleetScraper` polling 32 `SimTransport` shards over virtual-clock
//! links. Active rounds (every shard advanced) pay full snapshots; idle
//! rounds collapse to `Unchanged` acks — with `BENCH_GATE=1` the
//! idle/active byte ratio must stay ≤ 0.2 (the delta-scrape payoff), and
//! a 10%-drop lossy pass must hold contributor staleness p99 ≤ 5 rounds
//! (retries + backoff recover faster than the fleet decays).
//!
//! `mux_schedule` runs the closed multiplexing loop (simulated PMU →
//! streaming corrector → scheduler) on heterogeneous groups at an equal
//! sample budget and reports the scheduler's per-quantum decision cost
//! p50/p99 plus the mean-posterior-variance ratio of the
//! uncertainty-driven policy vs blind round-robin; with `BENCH_GATE=1`
//! the ratio must be ≤ 1 (the posterior-driven schedule never measures
//! worse than the rotation it replaces).
//!
//! `supervised_recovery` measures the crash-containment plane: the
//! wall-clock from an injected service panic to the supervisor having the
//! service `Running` again (constant 1 ms restart backoff, so the number
//! is detection + recovery machinery, not policy), with concurrent reads
//! verifying the last-good snapshot stays served throughout; and the
//! steady-state cost of the divergence guards (the ingest finite checks
//! per sample plus the publish-boundary sweep per window) relative to the
//! warm per-window inference time. With `BENCH_GATE=1` the restart p99
//! must stay under 100 ms, no read may fail mid-recovery, and the guard
//! overhead must stay ≤ 2% of warm per-window time.
//!
//! `multi_source_fuse` runs the observation-plane catalog end to end
//! twice — a multiplexed PMU alone, then the PMU plus the three simulated
//! gauge sources at 4×/8×/16× cadence — through one live monitor each,
//! and reports wall-clock ns/window for both arms plus the mean
//! gauge-event posterior spread ratio (fused / PMU-only). With
//! `BENCH_GATE=1` the ratio must be ≤ 1.0: gauge evidence may only
//! tighten the gauge posteriors, never widen them.
//!
//! `obs_overhead` times the warm `push_chunk` loop bare vs with the exact
//! per-chunk telemetry traffic the monitor's service loop performs
//! (registry counters, sweep/publish histograms, one span per pipeline
//! stage) layered on top. With `BENCH_GATE=1` the instrumented/bare warm
//! per-window ratio must stay ≤ 1.02 — observation is a ≤ 2% tax.
//!
//! `BENCH_QUICK=1` shrinks the pair and read counts for CI smoke runs;
//! `BENCH_JSON_PATH` overrides the output path.

use bayesperf_bench::fig6_fixture;
use bayesperf_core::corrector::{CorrectionStats, Corrector, CorrectorConfig};
use bayesperf_core::{Monitor, ServiceState, ShimError, SnapshotView, SupervisorPolicy};
use bayesperf_fleet::{
    wire, Aggregator, Fleet, FleetConfig, FleetScraper, HealthState, ScrapeConfig, ScrapeResponder,
    ShardId, ShardLabel, SimTransport, SnapshotSource,
};
use bayesperf_inference::{EpRunStats, Gaussian};
use bayesperf_mlsched::mux::{
    hetero_demo_events, run_closed_loop, GroupSchedule, MuxPolicy, MuxScheduler, RoundRobin,
    UncertaintyDriven, VarianceEstimates,
};
use bayesperf_obs::{Stage, Telemetry};
use bayesperf_simcpu::{LinkProfile, LinkState, PmuConfig, Sample};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const N_WINDOWS: usize = 96;

/// A shard stand-in for the networked-scrape bench: its snapshot is a
/// pure function of a version counter, so "the shard corrected another
/// chunk" is one atomic bump — no Monitor machinery in the timed loop.
struct NetSource {
    shard: u32,
    version: AtomicU64,
    events: usize,
}

impl NetSource {
    fn bump(&self) {
        self.version.fetch_add(1, Ordering::Relaxed);
    }
}

impl SnapshotSource for NetSource {
    fn source_stamp(&self) -> Result<(u32, u64), ShimError> {
        let v = self.version.load(Ordering::Relaxed);
        Ok((v as u32 * 6, v))
    }

    fn source_view(&self) -> Result<SnapshotView, ShimError> {
        let v = self.version.load(Ordering::Relaxed);
        Ok(SnapshotView {
            window: v as u32 * 6,
            chunk: v,
            stats: EpRunStats::default(),
            late_by_source: Vec::new(),
            posteriors: (0..self.events)
                .map(|e| {
                    Gaussian::new(
                        50.0 + f64::from(self.shard) * 0.1 + e as f64 + v as f64 * 0.01,
                        0.5 + (f64::from(self.shard) % 7.0) * 0.3 + e as f64 * 0.2,
                    )
                })
                .collect(),
        })
    }
}

/// Builds a SimTransport fleet of `shards` synthetic sources behind
/// per-shard derived link profiles, returning the scraper plus the bump
/// handles.
fn net_fleet(
    events: usize,
    shards: u32,
    template: &LinkProfile,
) -> (FleetScraper, Vec<Arc<NetSource>>) {
    let mut scraper = FleetScraper::new(
        events,
        ScrapeConfig {
            deadline: Duration::from_millis(5),
            ..ScrapeConfig::default()
        },
    );
    let mut sources = Vec::new();
    for shard in 0..shards {
        let source = Arc::new(NetSource {
            shard,
            version: AtomicU64::new(1),
            events,
        });
        let label = ShardLabel::new(format!("m{shard}"), shard % 2);
        let responder = Arc::new(ScrapeResponder::new(
            ShardId::from_raw(shard),
            label.clone(),
            Arc::clone(&source),
        ));
        scraper.add_endpoint(
            ShardId::from_raw(shard),
            label,
            Box::new(SimTransport::new(
                responder,
                LinkState::new(template.derive(shard)),
            )),
        );
        sources.push(source);
    }
    (scraper, sources)
}

fn main() {
    let pairs = if std::env::var_os("BENCH_QUICK").is_some() {
        3
    } else {
        10
    };
    let (cat, run) = fig6_fixture(N_WINDOWS);
    // Chunking must match the corrector's configured slice count, or
    // push_chunk panics on a window-count mismatch.
    let slices = CorrectorConfig::for_run(&run).model.slices.max(1);
    assert_eq!(N_WINDOWS % slices, 0, "fixture must be chunk-aligned");
    let windows: Vec<&[Sample]> = run.windows.iter().map(|w| w.samples.as_slice()).collect();
    let chunks: Vec<&[&[Sample]]> = windows.chunks(slices).collect();

    let mut warm_corr = Corrector::new(&cat, CorrectorConfig::for_run(&run));
    // One cold corrector reused across pairs (cold mode is stateless), so
    // engine construction stays outside the timed region of both arms.
    let mut cold_corr = Corrector::new(&cat, CorrectorConfig::for_run(&run).cold_start());
    let cold_once = |corr: &mut Corrector| -> (f64, CorrectionStats) {
        let t = Instant::now();
        let series = std::hint::black_box(corr.correct_run(&run));
        (t.elapsed().as_nanos() as f64, series.stats)
    };
    let warm_once = |corr: &mut Corrector| -> (f64, CorrectionStats) {
        let mut stats = CorrectionStats::default();
        let t = Instant::now();
        for chunk in &chunks {
            let s = std::hint::black_box(corr.push_chunk(chunk));
            stats.absorb_run(&s, true);
            stats.jump_site_resets += corr.last_push_jump_resets();
        }
        (t.elapsed().as_nanos() as f64, stats)
    };

    // Warm-up pair, discarded (takes the streaming corrector past its cold
    // first chunk).
    let _ = cold_once(&mut cold_corr);
    let _ = warm_once(&mut warm_corr);

    let mut cold_ns = 0.0;
    let mut warm_ns = 0.0;
    let mut ratios = Vec::with_capacity(pairs);
    let mut cold_stats = CorrectionStats::default();
    let mut warm_stats = CorrectionStats::default();
    for _ in 0..pairs {
        let (c_ns, c_stats) = cold_once(&mut cold_corr);
        let (w_ns, w_stats) = warm_once(&mut warm_corr);
        cold_ns += c_ns;
        warm_ns += w_ns;
        ratios.push(c_ns / w_ns);
        cold_stats = c_stats;
        warm_stats = w_stats;
    }
    let n = ratios.len() as f64;
    let mean = ratios.iter().sum::<f64>() / n;
    let var = ratios.iter().map(|r| (r - mean) * (r - mean)).sum::<f64>() / (n - 1.0).max(1.0);
    let half = 1.96 * (var / n).sqrt();
    let ns_per_window = |total_ns: f64| total_ns / n / N_WINDOWS as f64;

    // Shim read latency (the Fig. 3 claim): a `Session::read` is served
    // from the lock-free posterior snapshot — it must be orders of
    // magnitude cheaper than the warm inference it hides. Measured
    // against a live monitor that has corrected the same run.
    let reads = if std::env::var_os("BENCH_QUICK").is_some() {
        2_000
    } else {
        20_000
    };
    let monitor =
        Monitor::new(&cat, CorrectorConfig::for_run(&run), 1 << 16).expect("spawn monitor");
    let session = monitor.session().open().expect("fresh monitor");
    for w in &run.windows {
        for s in &w.samples {
            let _ = monitor.push_sample(*s);
        }
    }
    monitor.flush().expect("service alive");
    let ev = run.windows[0].samples[0].event;
    let mut read_ns: Vec<f64> = (0..reads)
        .map(|_| {
            let t = Instant::now();
            let r = std::hint::black_box(session.read(ev));
            let ns = t.elapsed().as_nanos() as f64;
            assert!(r.is_ok(), "posterior published after flush");
            ns
        })
        .collect();
    read_ns.sort_by(|a, b| a.total_cmp(b));
    let read_p50 = read_ns[reads / 2];
    let read_p99 = read_ns[reads * 99 / 100];
    // One warm push_chunk costs warm ns-per-window x chunk size; the
    // acceptance bar is p99 read >= 10x cheaper than that.
    let warm_chunk_ns = ns_per_window(warm_ns) * slices as f64;
    let read_vs_push = warm_chunk_ns / read_p99.max(1.0);
    if std::env::var_os("BENCH_GATE").is_some() {
        assert!(
            read_vs_push >= 10.0,
            "p99 shim read {read_p99:.0} ns must be >= 10x cheaper than a warm \
             push_chunk ({warm_chunk_ns:.0} ns), got {read_vs_push:.1}x"
        );
    }

    // Fleet read latency at 8 shards: a fused read is one lock-free
    // acquisition of the fleet snapshot cell — shard count must not leak
    // into the read path, so p99 must stay within 5x of the
    // single-session p99 measured above (the fleet BENCH_GATE).
    let n_shards = 8u32;
    let mut fleet =
        Fleet::new(&cat, FleetConfig::new(CorrectorConfig::for_run(&run))).expect("spawn fleet");
    let shard_ids: Vec<_> = (0..n_shards)
        .map(|i| {
            fleet
                .add_shard(ShardLabel::new(format!("m{i}"), 0))
                .expect("spawn shard")
        })
        .collect();
    for &id in &shard_ids {
        for w in &run.windows {
            for s in &w.samples {
                let _ = fleet.push_sample(id, *s);
            }
        }
    }
    fleet.flush().expect("fleet alive");
    let fleet_session = fleet.session().open().expect("fresh fleet");
    let mut fleet_ns: Vec<f64> = (0..reads)
        .map(|_| {
            let t = Instant::now();
            let r = std::hint::black_box(fleet_session.read(ev));
            let ns = t.elapsed().as_nanos() as f64;
            assert!(r.is_ok(), "fused posterior published after flush");
            ns
        })
        .collect();
    fleet_ns.sort_by(|a, b| a.total_cmp(b));
    let fleet_p50 = fleet_ns[reads / 2];
    let fleet_p99 = fleet_ns[reads * 99 / 100];
    let fleet_vs_shim = fleet_p99 / read_p99.max(1.0);
    if std::env::var_os("BENCH_GATE").is_some() {
        assert!(
            fleet_vs_shim <= 5.0,
            "p99 fleet read {fleet_p99:.0} ns must stay within 5x of the p99 \
             single-session read ({read_p99:.0} ns) at {n_shards} shards, got \
             {fleet_vs_shim:.1}x"
        );
    }

    // Fleet scrape throughput: one pass = snapshot + wire encode + wire
    // decode + precision-weighted fusion for all shards (the collector's
    // steady-state loop).
    let passes = if std::env::var_os("BENCH_QUICK").is_some() {
        100
    } else {
        1_000
    };
    let labels = fleet.shards();
    let sessions: Vec<_> = shard_ids
        .iter()
        .map(|&id| fleet.shard_session(id).expect("member"))
        .collect();
    let mut agg = Aggregator::new(cat.len());
    let mut view = SnapshotView::default();
    let mut buf = Vec::new();
    let mut scrape_bytes = 0usize;
    let t = Instant::now();
    for pass in 0..passes {
        agg.begin();
        buf.clear();
        for ((id, label), session) in labels.iter().zip(&sessions) {
            session.snapshot_into(&mut view).expect("published");
            let record = wire::ShardSnapshot::from_view(*id, label.clone(), &view);
            let start = buf.len();
            wire::encode_shard(&record, &mut buf);
            let (decoded, _) = wire::decode_shard(&buf[start..]).expect("own encoding");
            agg.absorb(decoded.status(), &decoded.posteriors)
                .expect("catalog-sized");
        }
        scrape_bytes = buf.len();
        std::hint::black_box(agg.fuse(pass as u64 + 1).expect("shards absorbed"));
    }
    let scrape_ns_per_pass = t.elapsed().as_nanos() as f64 / passes as f64;

    // Networked scrape plane: a FleetScraper polling SimTransport shards
    // (virtual-clock links, so the protocol — not sleeps — is what's
    // timed). Active rounds bump every source first (full snapshots);
    // idle rounds leave the sources alone (tiny Unchanged acks). The
    // idle/active byte ratio is the delta-scrape payoff, gated under
    // BENCH_GATE; a lossy pass then measures contributor staleness p99.
    let net_shards = 32u32;
    let net_rounds = if std::env::var_os("BENCH_QUICK").is_some() {
        50
    } else {
        300
    };
    let clean = LinkProfile::clean(0xBE7C4);
    let (mut net_scraper, net_sources) = net_fleet(cat.len(), net_shards, &clean);
    net_scraper.poll_round(); // prime caches outside the timed region
    let mut active_bytes = 0u64;
    let t = Instant::now();
    for _ in 0..net_rounds {
        for s in &net_sources {
            s.bump();
        }
        active_bytes += net_scraper.poll_round().bytes_received;
    }
    let net_active_ns = t.elapsed().as_nanos() as f64 / f64::from(net_rounds);
    let mut idle_bytes = 0u64;
    let t = Instant::now();
    for _ in 0..net_rounds {
        idle_bytes += net_scraper.poll_round().bytes_received;
    }
    let net_idle_ns = t.elapsed().as_nanos() as f64 / f64::from(net_rounds);
    let delta_byte_ratio = idle_bytes as f64 / (active_bytes as f64).max(1.0);
    if std::env::var_os("BENCH_GATE").is_some() {
        assert!(
            delta_byte_ratio <= 0.2,
            "idle scrape rounds must cost <= 0.2x the bytes of active rounds \
             (delta acks vs full snapshots), got {delta_byte_ratio:.3} \
             ({idle_bytes} vs {active_bytes} bytes over {net_rounds} rounds)"
        );
    }

    // Lossy pass: 10% drop with lag that can blow the 5 ms deadline.
    // Contributor staleness (health age of every non-Dead endpoint, per
    // round) must stay bounded — retries + backoff recover faster than
    // the fleet decays.
    let net_drop = 0.10;
    let lossy = LinkProfile {
        latency_us: 1_000.0,
        latency_jitter_us: 3_000.0,
        ..LinkProfile::lossy(0x10_55, net_drop)
    };
    let (mut lossy_scraper, lossy_sources) = net_fleet(cat.len(), net_shards, &lossy);
    let lossy_reader = lossy_scraper.reader();
    let mut ages: Vec<u32> = Vec::new();
    for _ in 0..net_rounds {
        for s in &lossy_sources {
            s.bump();
        }
        lossy_scraper.poll_round();
        let snap = lossy_reader.read().expect("lossy fleet keeps publishing");
        ages.extend(
            snap.health
                .iter()
                .filter(|h| h.state != HealthState::Dead)
                .map(|h| h.age),
        );
        drop(snap); // release the snapshot slot before the next publish
    }
    ages.sort_unstable();
    let staleness_p99 = ages[ages.len() * 99 / 100];
    if std::env::var_os("BENCH_GATE").is_some() {
        assert!(
            staleness_p99 <= 5,
            "contributor staleness p99 must stay <= 5 rounds at {net_drop} drop \
             probability, got {staleness_p99} (over {} age samples)",
            ages.len()
        );
    }

    // Multiplexing scheduler: decision cost plus the equal-budget claim —
    // on the kmeans workload over heterogeneous groups, the
    // uncertainty-driven policy must reach mean posterior variance no
    // worse than blind round-robin (the BENCH_GATE below; the closed-loop
    // test asserts the strict version).
    let mux_windows = if std::env::var_os("BENCH_QUICK").is_some() {
        24
    } else {
        48
    };
    let mux_bound = 6usize;
    let mux_schedule = GroupSchedule::from_events(&cat, &hetero_demo_events(&cat), mux_bound)
        .expect("groups fit the PMU");
    let mux_groups = mux_schedule.len();
    let closed = |policy: Box<dyn MuxPolicy>| {
        let mut truth = bayesperf_workloads::kmeans().instantiate(&cat, 0);
        run_closed_loop(
            &cat,
            &mut truth,
            PmuConfig::for_catalog(&cat),
            mux_schedule.clone(),
            policy,
            CorrectorConfig::for_run(&run),
            mux_windows,
        )
    };
    let rr = closed(Box::new(RoundRobin));
    let ud = closed(Box::<UncertaintyDriven>::default());
    let variance_ratio = ud.mean_rel_var / rr.mean_rel_var;
    if std::env::var_os("BENCH_GATE").is_some() {
        assert!(
            variance_ratio <= 1.0,
            "uncertainty-driven mean posterior variance ({:.5}) must not exceed \
             round-robin ({:.5}) at an equal {mux_windows}-window budget, got {variance_ratio:.3}x",
            ud.mean_rel_var,
            rr.mean_rel_var
        );
    }

    // Scheduler decision cost: one `MuxScheduler::next` against realistic
    // variances scraped from the live monitor's published snapshot — this
    // is the per-quantum cost the sampling loop pays, so it must stay in
    // nanoseconds, far under any real multiplexing quantum.
    let mut estimates = VarianceEstimates::new(cat.len());
    assert!(
        estimates.refresh(&session),
        "monitor flushed above, snapshot published"
    );
    let mut decider =
        MuxScheduler::new(mux_schedule.clone(), Box::new(UncertaintyDriven::default()));
    let mut decide_ns: Vec<f64> = (0..reads)
        .map(|_| {
            let t = Instant::now();
            std::hint::black_box(decider.next(Some(&estimates)));
            t.elapsed().as_nanos() as f64
        })
        .collect();
    decide_ns.sort_by(|a, b| a.total_cmp(b));
    let decide_p50 = decide_ns[reads / 2];
    let decide_p99 = decide_ns[reads * 99 / 100];

    // Supervised recovery: crash the service repeatedly and time each
    // inject-panic → Running round trip. The policy pins the backoff at
    // 1 ms so the measurement is the supervisor machinery (detect the
    // unwind, reclaim the snapshot writer, respawn warm), not the
    // default exponential policy. A reader polls throughout: the
    // availability contract says every read mid-recovery serves the
    // last good snapshot.
    let rec_cycles: usize = if std::env::var_os("BENCH_QUICK").is_some() {
        10
    } else {
        30
    };
    let rec_monitor = Monitor::with_policy(
        &cat,
        CorrectorConfig::for_run(&run),
        1 << 16,
        SupervisorPolicy {
            max_consecutive_restarts: rec_cycles as u32 + 8,
            backoff_base: Duration::from_millis(1),
            backoff_cap: Duration::from_millis(1),
        },
    )
    .expect("spawn recovery monitor");
    let rec_session = rec_monitor.session().open().expect("fresh monitor");
    for w in &run.windows {
        for s in &w.samples {
            let _ = rec_monitor.push_sample(*s);
        }
    }
    rec_monitor.flush().expect("service alive");
    let mut restart_ns: Vec<f64> = Vec::with_capacity(rec_cycles);
    let mut reads_during_recovery = 0u64;
    let mut read_failures = 0u64;
    for cycle in 0..rec_cycles {
        let t = Instant::now();
        rec_monitor.inject_panic().expect("service alive");
        let target = cycle as u64 + 1;
        while rec_monitor.restarts() < target
            || rec_monitor.service_state() != ServiceState::Running
        {
            reads_during_recovery += 1;
            if rec_session.read(ev).is_err() {
                read_failures += 1;
            }
            std::thread::yield_now();
        }
        restart_ns.push(t.elapsed().as_nanos() as f64);
    }
    restart_ns.sort_by(|a, b| a.total_cmp(b));
    let restart_p50 = restart_ns[rec_cycles / 2];
    let restart_p99 = restart_ns[rec_cycles * 99 / 100];
    if std::env::var_os("BENCH_GATE").is_some() {
        assert!(
            restart_p99 <= 100e6,
            "p99 crash-to-Running recovery must stay under 100 ms at a 1 ms \
             backoff, got {:.1} ms over {rec_cycles} cycles",
            restart_p99 / 1e6
        );
        assert_eq!(
            read_failures, 0,
            "every read during recovery must serve the last good snapshot \
             ({reads_during_recovery} reads)"
        );
    }

    // Steady-state guard overhead: the exact finite checks the service
    // runs per sample at ingest and per posterior at the publish
    // boundary, timed over the same run the warm arm corrected, and
    // expressed relative to warm per-window inference time. The gate is
    // the tentpole's ≤ 2% budget; in practice the ratio is orders of
    // magnitude smaller, which is the point — containment is not a tax.
    let guard_iters = 200usize;
    let published = rec_session.snapshot().expect("flushed above");
    let t = Instant::now();
    for _ in 0..guard_iters {
        let mut rejected = 0u64;
        for w in &run.windows {
            for s in &w.samples {
                if !s.value.is_finite()
                    || !s.sub_mean.is_finite()
                    || !s.sub_sd.is_finite()
                    || s.sub_sd < 0.0
                {
                    rejected += 1;
                }
            }
        }
        for _ in 0..N_WINDOWS {
            for g in &published.posteriors {
                if !(g.mean.is_finite() && g.var.is_finite() && g.var > 0.0) {
                    rejected += 1;
                }
            }
        }
        std::hint::black_box(rejected);
    }
    let guard_ns_per_window = t.elapsed().as_nanos() as f64 / guard_iters as f64 / N_WINDOWS as f64;
    let guard_over_warm = guard_ns_per_window / ns_per_window(warm_ns).max(1.0);
    if std::env::var_os("BENCH_GATE").is_some() {
        assert!(
            guard_over_warm <= 0.02,
            "divergence guards must cost <= 2% of warm per-window time, got \
             {:.3}% ({guard_ns_per_window:.0} ns/window vs {:.0} ns/window warm)",
            guard_over_warm * 100.0,
            ns_per_window(warm_ns)
        );
    }

    // Multi-source fusion: the observation-plane catalog end to end —
    // PMU-only vs PMU + the three simulated gauge sources at slower
    // cadences, each through a live monitor. Wall-clock covers push +
    // pump + flush (the whole ingest/inference pipeline), and the
    // posterior comparison is the mean gauge-event spread: gauge
    // evidence must tighten it (ratio ≤ 1 under BENCH_GATE), mirroring
    // the acceptance test one layer down.
    let ms_windows = 18usize;
    let ms_seed = 3u64;
    let ms_run = |with_gauges: bool| -> (f64, f64) {
        use bayesperf_core::source::pump_sources;
        use bayesperf_events::{Arch, Catalog, Semantic};
        use bayesperf_simcpu::{pack_round_robin, GaugeProfile, Pmu, SampleSource, SimGauge};

        let ms_cat = Catalog::with_observation_plane(Arch::X86SkyLake);
        let mut truth = bayesperf_workloads::kmeans().instantiate(&ms_cat, ms_seed);
        let events = vec![
            ms_cat.require(Semantic::IioRdTotal),
            ms_cat.require(Semantic::IioWrTotal),
            ms_cat.require(Semantic::UopsIssued),
            ms_cat.require(Semantic::L1dMisses),
        ];
        let schedule = pack_round_robin(&ms_cat, &events).expect("schedule fits");
        let pmu_cfg = PmuConfig::for_catalog(&ms_cat);
        let ms_run = Pmu::new(&ms_cat, pmu_cfg).run_multiplexed(&mut truth, &schedule, ms_windows);
        let ms_monitor = Monitor::new(&ms_cat, CorrectorConfig::for_run(&ms_run), 1 << 14)
            .expect("spawn monitor");
        let ms_session = ms_monitor.session().open().expect("open session");
        let mut sources: Vec<Box<dyn SampleSource + '_>> = if with_gauges {
            ms_cat.sources()[1..]
                .iter()
                .enumerate()
                .map(|(i, desc)| {
                    Box::new(
                        SimGauge::new(
                            &ms_cat,
                            desc.id,
                            GaugeProfile::for_source(desc, 11 + i as u64),
                            &pmu_cfg,
                            bayesperf_workloads::kmeans().instantiate(&ms_cat, ms_seed),
                        )
                        .expect("gauge source"),
                    ) as Box<dyn SampleSource + '_>
                })
                .collect()
        } else {
            Vec::new()
        };
        let t = Instant::now();
        for (w, win) in ms_run.windows.iter().enumerate() {
            for s in &win.samples {
                let _ = ms_monitor.push_sample(*s);
            }
            pump_sources(&ms_monitor, &mut sources, w as u32).expect("pump");
        }
        ms_monitor.sync().expect("sync");
        ms_monitor.flush().expect("flush");
        let elapsed_ns = t.elapsed().as_nanos() as f64;
        let mut gauge_sd = 0.0;
        for &sem in Semantic::gauges() {
            gauge_sd += ms_session
                .read(ms_cat.require(sem))
                .expect("gauge read")
                .std_dev;
        }
        gauge_sd /= Semantic::gauges().len() as f64;
        (elapsed_ns / ms_windows as f64, gauge_sd)
    };
    let ms_sources = 4usize;
    let (ms_pmu_ns, ms_pmu_sd) = ms_run(false);
    let (ms_fused_ns, ms_fused_sd) = ms_run(true);
    let ms_overhead = ms_fused_ns / ms_pmu_ns.max(1.0);
    let ms_ratio = ms_fused_sd / ms_pmu_sd.max(f64::MIN_POSITIVE);
    if std::env::var_os("BENCH_GATE").is_some() {
        assert!(
            ms_ratio <= 1.0,
            "fusing gauge sources must tighten the mean gauge posterior \
             (fused {ms_fused_sd:.1} vs PMU-only {ms_pmu_sd:.1}), got {ms_ratio:.3}x"
        );
    }

    // Telemetry overhead: the warm push_chunk loop, bare vs with the exact
    // per-chunk registry/span traffic the monitor's service loop layers on
    // top of it (heartbeats, late counters, chunk/window totals, sweep and
    // publish histograms, one span per pipeline stage). The instrumented
    // arm deliberately over-counts — it replays every hot-path telemetry
    // op even on chunks that publish nothing — so the gated ratio is a
    // ceiling on what the real service pays. With BENCH_GATE=1 the warm
    // per-window ratio must stay ≤ 1.02.
    let obs_tele = Telemetry::new();
    let obs_reg = obs_tele.registry();
    let obs_beats = obs_reg.counter("service.beats");
    let obs_late = obs_reg.counter("ingest.late_total");
    let obs_chunks = obs_reg.counter("service.chunks_run");
    let obs_windows = obs_reg.counter("service.windows_published");
    let obs_sweep = obs_reg.histogram("ep.sweep_ns");
    let obs_publish = obs_reg.histogram("service.publish_ns");
    let obs_spans = obs_tele.spans().recorder();
    let mut bare_corr = Corrector::new(&cat, CorrectorConfig::for_run(&run));
    let mut inst_corr = Corrector::new(&cat, CorrectorConfig::for_run(&run));
    let bare_once = |corr: &mut Corrector| -> f64 {
        let t = Instant::now();
        for chunk in &chunks {
            std::hint::black_box(corr.push_chunk(chunk));
        }
        t.elapsed().as_nanos() as f64
    };
    let inst_once = |corr: &mut Corrector| -> f64 {
        let t = Instant::now();
        for (c, chunk) in chunks.iter().enumerate() {
            let started = obs_spans.now_ns();
            obs_beats.incr();
            obs_late.add(0);
            let sweep_start = obs_spans.now_ns();
            std::hint::black_box(corr.push_chunk(chunk));
            let sweep_end = obs_spans.now_ns();
            let w = (c * slices) as u32;
            for i in 0..slices {
                obs_spans.record(Stage::Ingest, w + i as u32, started, sweep_start);
            }
            obs_sweep.record(sweep_end.saturating_sub(sweep_start));
            obs_spans.record(Stage::Assemble, w, started, sweep_start);
            obs_spans.record(Stage::EpSweep, w, sweep_start, sweep_end);
            obs_chunks.incr();
            obs_windows.add(slices as u64);
            obs_beats.incr();
            let publish_end = obs_spans.now_ns();
            obs_publish.record(publish_end.saturating_sub(sweep_end));
            for i in 0..slices {
                obs_spans.record(Stage::Publish, w + i as u32, sweep_end, publish_end);
            }
        }
        t.elapsed().as_nanos() as f64
    };
    let _ = bare_once(&mut bare_corr);
    let _ = inst_once(&mut inst_corr);
    let mut bare_ns = 0.0;
    let mut inst_ns = 0.0;
    for _ in 0..pairs {
        bare_ns += bare_once(&mut bare_corr);
        inst_ns += inst_once(&mut inst_corr);
    }
    let obs_bare_per_window = bare_ns / n / N_WINDOWS as f64;
    let obs_inst_per_window = inst_ns / n / N_WINDOWS as f64;
    let obs_ratio = obs_inst_per_window / obs_bare_per_window.max(1.0);
    if std::env::var_os("BENCH_GATE").is_some() {
        assert!(
            obs_ratio <= 1.02,
            "telemetry must cost <= 2% of warm per-window inference time, got \
             {obs_ratio:.4}x ({obs_inst_per_window:.0} ns/window instrumented vs \
             {obs_bare_per_window:.0} ns/window bare)"
        );
    }

    let json = format!(
        r#"{{
  "bench": "inference_warm_vs_cold",
  "workload": "kmeans",
  "windows": {N_WINDOWS},
  "chunk_slices": {slices},
  "pairs": {pairs},
  "cold": {{ "ns_per_window": {:.0}, "sweeps_per_chunk": {:.3},
            "mcmc_samples_per_site_update": {:.1}, "mcmc_samples_total": {} }},
  "warm": {{ "ns_per_window": {:.0}, "sweeps_per_chunk": {:.3},
            "mcmc_samples_per_site_update": {:.1}, "mcmc_samples_total": {},
            "jump_site_resets": {} }},
  "speedup": {{ "mean": {:.3}, "ci95_lo": {:.3}, "ci95_hi": {:.3} }},
  "shim_read": {{ "reads": {reads}, "p50_ns": {:.0}, "p99_ns": {:.0},
                 "warm_push_chunk_ns": {:.0}, "push_over_p99_read": {:.1} }},
  "fleet_read": {{ "shards": {n_shards}, "reads": {reads}, "p50_ns": {:.0},
                  "p99_ns": {:.0}, "vs_shim_p99": {:.2} }},
  "fleet_scrape": {{ "shards": {n_shards}, "passes": {passes},
                    "ns_per_pass": {:.0}, "ns_per_shard": {:.0},
                    "bytes_per_pass": {scrape_bytes} }},
  "fleet_scrape_net": {{ "shards": {net_shards}, "rounds": {net_rounds},
                        "active_ns_per_round": {:.0}, "idle_ns_per_round": {:.0},
                        "active_bytes": {active_bytes}, "idle_bytes": {idle_bytes},
                        "delta_byte_ratio": {:.4}, "lossy_drop_prob": {net_drop},
                        "staleness_p99_rounds": {staleness_p99} }},
  "mux_schedule": {{ "groups": {mux_groups}, "bound": {mux_bound},
                    "windows": {mux_windows}, "decisions": {reads},
                    "decide_p50_ns": {:.0}, "decide_p99_ns": {:.0},
                    "rr_mean_rel_var": {:.5}, "ud_mean_rel_var": {:.5},
                    "variance_ratio": {:.3} }},
  "supervised_recovery": {{ "cycles": {rec_cycles}, "restart_p50_ns": {:.0},
                           "restart_p99_ns": {:.0},
                           "reads_during_recovery": {reads_during_recovery},
                           "read_failures": {read_failures},
                           "guard_ns_per_window": {:.1},
                           "guard_over_warm": {:.6} }},
  "multi_source_fuse": {{ "windows": {ms_windows}, "sources": {ms_sources},
                         "pmu_only_ns_per_window": {:.0},
                         "fused_ns_per_window": {:.0}, "fuse_overhead": {:.3},
                         "pmu_only_gauge_sd": {:.1}, "fused_gauge_sd": {:.1},
                         "rel_variance_ratio": {:.4} }},
  "obs_overhead": {{ "pairs": {pairs}, "bare_ns_per_window": {:.0},
                    "instrumented_ns_per_window": {:.0},
                    "instrumented_over_bare": {:.4} }}
}}
"#,
        ns_per_window(cold_ns),
        cold_stats.sweeps_per_chunk(),
        cold_stats.samples_per_site_update(),
        cold_stats.mcmc_samples,
        ns_per_window(warm_ns),
        warm_stats.sweeps_per_chunk(),
        warm_stats.samples_per_site_update(),
        warm_stats.mcmc_samples,
        warm_stats.jump_site_resets,
        mean,
        mean - half,
        mean + half,
        read_p50,
        read_p99,
        warm_chunk_ns,
        read_vs_push,
        fleet_p50,
        fleet_p99,
        fleet_vs_shim,
        scrape_ns_per_pass,
        scrape_ns_per_pass / f64::from(n_shards),
        net_active_ns,
        net_idle_ns,
        delta_byte_ratio,
        decide_p50,
        decide_p99,
        rr.mean_rel_var,
        ud.mean_rel_var,
        variance_ratio,
        restart_p50,
        restart_p99,
        guard_ns_per_window,
        guard_over_warm,
        ms_pmu_ns,
        ms_fused_ns,
        ms_overhead,
        ms_pmu_sd,
        ms_fused_sd,
        ms_ratio,
        obs_bare_per_window,
        obs_inst_per_window,
        obs_ratio,
    );

    let path = std::env::var("BENCH_JSON_PATH").unwrap_or_else(|_| "BENCH_inference.json".into());
    std::fs::write(&path, &json).expect("write BENCH_inference.json");
    print!("{json}");
    eprintln!("wrote {path} (steady-state warm speedup {mean:.2}x over {pairs} pairs)");
}
