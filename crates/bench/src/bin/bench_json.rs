//! Machine-readable inference perf baseline: runs every perf gate as an
//! interleaved, interval-bounded measurement (`bayesperf_bench::gate`) on
//! the fig6-style workload and writes `BENCH_inference.json` — the
//! trajectory file future PRs diff their hot path against, with error
//! bars.
//!
//! Every gated quantity is measured the same way: the two arms (or the
//! one arm, for absolute-deadline gates) run under a seeded coin-flip
//! interleaving schedule, a Welch's-t confidence interval brackets the
//! ratio of means, and the gate passes/fails on the **interval bound**,
//! never on a raw point estimate — see `crates/bench/README.md` for the
//! methodology and the full gate table. With `BENCH_GATE=1` a verdict
//! that does not hold aborts the run; without it the verdicts are only
//! reported. `BENCH_QUICK=1` shrinks sample budgets for CI smoke runs;
//! `BENCH_JSON_PATH` overrides the output path.
//!
//! Schema (all times wall-clock, single process, fixed seeds; every entry
//! carries a `gate` object — or two, where one section holds two gates —
//! with the point estimate, its `[lo, hi]` interval, per-arm sample
//! counts `n_a`/`n_b`, the bound, and the three-way verdict):
//!
//! ```json
//! {
//!   "bench": "inference_warm_vs_cold",
//!   "workload": "kmeans",
//!   "windows": 96,
//!   "chunk_slices": 6,
//!   "alpha": 0.005,
//!   "cold": { "ns_per_window": 0.0, "sweeps_per_chunk": 0.0,
//!             "mcmc_samples_per_site_update": 0.0, "mcmc_samples_total": 0,
//!             "n": 0 },
//!   "warm": { "ns_per_window": 0.0, "sweeps_per_chunk": 0.0,
//!             "mcmc_samples_per_site_update": 0.0, "mcmc_samples_total": 0,
//!             "jump_site_resets": 0, "n": 0 },
//!   "speedup": { "mean": 0.0, "gate": { "stat": 0.0, "lo": 0.0, "hi": 0.0,
//!                "n_a": 0, "n_b": 0, "rel": ">=", "bound": 1.111111,
//!                "alpha": 0.005, "verdict": "pass" } },
//!   "shim_read": { "reads": 0, "p50_ns": 0.0, "p99_ns": 0.0,
//!                  "warm_push_chunk_ns": 0.0, "gate": { ... } },
//!   "fleet_read": { "shards": 8, "reads": 0, "p50_ns": 0.0, "p99_ns": 0.0,
//!                   "gate": { ... } },
//!   "fleet_scrape": { "shards": 8, "passes_per_sample": 0,
//!                     "ns_per_shard": 0.0, "bytes_per_pass": 0,
//!                     "gate": { ... } },
//!   "fleet_scrape_net": { "shards": 32, "active_ns_per_round": 0.0,
//!                         "idle_ns_per_round": 0.0,
//!                         "active_bytes_per_round": 0.0,
//!                         "idle_bytes_per_round": 0.0,
//!                         "lossy_drop_prob": 0.1, "staleness_p99_rounds": 0,
//!                         "delta_gate": { ... }, "staleness_gate": { ... } },
//!   "mux_schedule": { "groups": 3, "bound": 6, "windows": 0, "decisions": 0,
//!                     "decide_p50_ns": 0.0, "decide_p99_ns": 0.0,
//!                     "rr_mean_rel_var": 0.0, "ud_mean_rel_var": 0.0,
//!                     "gate": { ... } },
//!   "supervised_recovery": { "cycles": 0, "restart_p50_ns": 0.0,
//!                            "restart_p99_ns": 0.0, "reads_during_recovery": 0,
//!                            "read_failures": 0, "guard_ns_per_window": 0.0,
//!                            "restart_gate": { ... }, "guard_gate": { ... } },
//!   "multi_source_fuse": { "windows": 18, "sources": 4,
//!                          "pmu_only_ns_per_window": 0.0,
//!                          "fused_ns_per_window": 0.0,
//!                          "pmu_only_gauge_sd": 0.0, "fused_gauge_sd": 0.0,
//!                          "gate": { ... } },
//!   "obs_overhead": { "warm_ns_per_window": 0.0,
//!                     "telemetry_ns_per_window": 0.0, "gate": { ... } }
//! }
//! ```
//!
//! The gates (statistic → bound; each decided on the one-sided
//! `1 - α` interval bound, α = 0.005):
//!
//! * `speedup` — cold/warm wall-time ratio of the chained corrector,
//!   interleaved steady-state pairs; lower bound must stay ≥ 1/0.9 (the
//!   warm path must beat 0.9× cold with confidence).
//! * `shim_read` — one warm `push_chunk` over the mean `Session::read`
//!   (the Fig. 3 property); lower bound ≥ 10× (reads never pay for
//!   inference).
//! * `fleet_read` — mean 8-shard `FleetSession::read` over mean
//!   single-session read; upper bound ≤ 5× (shard count must not leak
//!   into the read path).
//! * `fleet_scrape` — ns per full scrape-encode-decode-fuse pass at 8
//!   shards; upper bound ≤ 1 ms (a loose absolute sanity ceiling).
//! * `fleet_scrape_net.delta_gate` — idle-round bytes over active-round
//!   bytes at 32 networked shards; upper bound ≤ 0.2 (the delta-scrape
//!   payoff).
//! * `fleet_scrape_net.staleness_gate` — mean per-round worst contributor
//!   age under 10% drop; upper bound ≤ 5 rounds (retries + backoff
//!   recover faster than the fleet decays).
//! * `mux_schedule` — uncertainty-driven over round-robin mean posterior
//!   variance at an equal budget, both arms cycling the three reference
//!   workload instances; upper bound ≤ 1 (the posterior-driven schedule
//!   never measures worse than the rotation it replaces).
//! * `supervised_recovery.restart_gate` — mean crash-to-Running wall
//!   clock at a pinned 1 ms backoff; upper bound ≤ 100 ms. (The
//!   no-read-fails-mid-recovery check stays an exact invariant — it is a
//!   correctness property, not a noisy measurement.)
//! * `supervised_recovery.guard_gate` — divergence-guard ns/window over
//!   warm inference ns/window; upper bound ≤ 0.02 (containment is a ≤ 2%
//!   tax).
//! * `multi_source_fuse` — fused over PMU-only mean gauge posterior
//!   spread across interleaved seeds; upper bound ≤ 1 (gauge evidence may
//!   only tighten gauge posteriors).
//! * `obs_overhead` — the service loop's per-chunk telemetry traffic
//!   (counters, histograms, spans) ns/window over warm inference
//!   ns/window, paired; upper bound ≤ 0.02 (observation is a ≤ 2% tax).

use bayesperf_bench::fig6_fixture;
use bayesperf_bench::gate::{GateConfig, GateVerdict};
use bayesperf_core::corrector::{CorrectionStats, Corrector, CorrectorConfig};
use bayesperf_core::{Monitor, ServiceState, ShimError, SnapshotView, SupervisorPolicy};
use bayesperf_fleet::{
    wire, Aggregator, Fleet, FleetConfig, FleetScraper, HealthState, ScrapeConfig, ScrapeResponder,
    ShardId, ShardLabel, SimTransport, SnapshotSource,
};
use bayesperf_inference::{EpRunStats, Gaussian};
use bayesperf_mlsched::mux::{
    hetero_demo_events, run_closed_loop, GroupSchedule, MuxPolicy, MuxScheduler, RoundRobin,
    UncertaintyDriven, VarianceEstimates,
};
use bayesperf_obs::{Stage, Telemetry};
use bayesperf_simcpu::{LinkProfile, LinkState, PmuConfig, Sample};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const N_WINDOWS: usize = 96;

fn quick() -> bool {
    std::env::var_os("BENCH_QUICK").is_some()
}

/// Per-arm (min, max) sample budget, switched on `BENCH_QUICK`.
fn budget(quick_minmax: (usize, usize), full_minmax: (usize, usize)) -> (usize, usize) {
    if quick() {
        quick_minmax
    } else {
        full_minmax
    }
}

fn with_budget(cfg: GateConfig, q: (usize, usize), f: (usize, usize)) -> GateConfig {
    let (min, max) = budget(q, f);
    cfg.samples(min, max).max_wall(Duration::from_secs(300))
}

/// Reports the verdict, and under `BENCH_GATE=1` enforces it.
fn check(v: &GateVerdict) {
    eprintln!("gate {}", v.summary());
    if std::env::var_os("BENCH_GATE").is_some() {
        assert!(v.holds(), "BENCH_GATE failed — {}", v.summary());
    }
}

/// A shard stand-in for the networked-scrape bench: its snapshot is a
/// pure function of a version counter, so "the shard corrected another
/// chunk" is one atomic bump — no Monitor machinery in the timed loop.
struct NetSource {
    shard: u32,
    version: AtomicU64,
    events: usize,
}

impl NetSource {
    fn bump(&self) {
        self.version.fetch_add(1, Ordering::Relaxed);
    }
}

impl SnapshotSource for NetSource {
    fn source_stamp(&self) -> Result<(u32, u64), ShimError> {
        let v = self.version.load(Ordering::Relaxed);
        Ok((v as u32 * 6, v))
    }

    fn source_view(&self) -> Result<SnapshotView, ShimError> {
        let v = self.version.load(Ordering::Relaxed);
        Ok(SnapshotView {
            window: v as u32 * 6,
            chunk: v,
            stats: EpRunStats::default(),
            late_by_source: Vec::new(),
            posteriors: (0..self.events)
                .map(|e| {
                    Gaussian::new(
                        50.0 + f64::from(self.shard) * 0.1 + e as f64 + v as f64 * 0.01,
                        0.5 + (f64::from(self.shard) % 7.0) * 0.3 + e as f64 * 0.2,
                    )
                })
                .collect(),
        })
    }
}

/// Builds a SimTransport fleet of `shards` synthetic sources behind
/// per-shard derived link profiles, returning the scraper plus the bump
/// handles.
fn net_fleet(
    events: usize,
    shards: u32,
    template: &LinkProfile,
) -> (FleetScraper, Vec<Arc<NetSource>>) {
    let mut scraper = FleetScraper::new(
        events,
        ScrapeConfig {
            deadline: Duration::from_millis(5),
            ..ScrapeConfig::default()
        },
    );
    let mut sources = Vec::new();
    for shard in 0..shards {
        let source = Arc::new(NetSource {
            shard,
            version: AtomicU64::new(1),
            events,
        });
        let label = ShardLabel::new(format!("m{shard}"), shard % 2);
        let responder = Arc::new(ScrapeResponder::new(
            ShardId::from_raw(shard),
            label.clone(),
            Arc::clone(&source),
        ));
        scraper.add_endpoint(
            ShardId::from_raw(shard),
            label,
            Box::new(SimTransport::new(
                responder,
                LinkState::new(template.derive(shard)),
            )),
        );
        sources.push(source);
    }
    (scraper, sources)
}

fn main() {
    let (cat, run) = fig6_fixture(N_WINDOWS);
    // Chunking must match the corrector's configured slice count, or
    // push_chunk panics on a window-count mismatch.
    let slices = CorrectorConfig::for_run(&run).model.slices.max(1);
    assert_eq!(N_WINDOWS % slices, 0, "fixture must be chunk-aligned");
    let windows: Vec<&[Sample]> = run.windows.iter().map(|w| w.samples.as_slice()).collect();
    let chunks: Vec<&[&[Sample]]> = windows.chunks(slices).collect();

    let mut warm_corr = Corrector::new(&cat, CorrectorConfig::for_run(&run));
    // One cold corrector reused across samples (cold mode is stateless),
    // so engine construction stays outside the timed region of both arms.
    let mut cold_corr = Corrector::new(&cat, CorrectorConfig::for_run(&run).cold_start());
    let cold_once = |corr: &mut Corrector| -> (f64, CorrectionStats) {
        let t = Instant::now();
        let series = std::hint::black_box(corr.correct_run(&run));
        (t.elapsed().as_nanos() as f64, series.stats)
    };
    let warm_once = |corr: &mut Corrector| -> (f64, CorrectionStats) {
        let mut stats = CorrectionStats::default();
        let t = Instant::now();
        for chunk in &chunks {
            let s = std::hint::black_box(corr.push_chunk(chunk));
            stats.absorb_run(&s, true);
            stats.jump_site_resets += corr.last_push_jump_resets();
        }
        (t.elapsed().as_nanos() as f64, stats)
    };

    // Warm-up pair, discarded (takes the streaming corrector past its cold
    // first chunk).
    let _ = cold_once(&mut cold_corr);
    let _ = warm_once(&mut warm_corr);

    // Gate 1 — warm-vs-cold speedup. Arm A streams warm chunks through the
    // persistent corrector (steady state), arm B is the cold
    // rebuild-per-chunk baseline. The arms run as back-to-back pairs in
    // coin-flip order (a paired gate: machine drift divides out inside
    // each pair), and the gate requires the speedup's *lower* confidence
    // bound to clear 1/0.9.
    let mut cold_stats = CorrectionStats::default();
    let mut warm_stats = CorrectionStats::default();
    let speedup = with_budget(
        GateConfig::at_least("cold_over_warm", 1.0 / 0.9).seed(0xA1),
        (3, 6),
        (6, 12),
    )
    .run_paired(
        || {
            let (ns, s) = warm_once(&mut warm_corr);
            warm_stats = s;
            ns
        },
        || {
            let (ns, s) = cold_once(&mut cold_corr);
            cold_stats = s;
            ns
        },
    );
    check(&speedup);
    let warm_ns_per_window = speedup.mean_a / N_WINDOWS as f64;
    let cold_ns_per_window = speedup.mean_b / N_WINDOWS as f64;

    // Shim read latency (the Fig. 3 claim): a `Session::read` is served
    // from the lock-free posterior snapshot — it must be orders of
    // magnitude cheaper than the warm inference it hides. Percentiles are
    // measured read-by-read against a live monitor that has corrected the
    // same run; the gate then compares interleaved read *batches* (mean
    // ns/read, amortizing timer overhead) against single warm
    // `push_chunk` runs.
    let reads = if quick() { 2_000 } else { 20_000 };
    let monitor =
        Monitor::new(&cat, CorrectorConfig::for_run(&run), 1 << 16).expect("spawn monitor");
    let session = monitor.session().open().expect("fresh monitor");
    for w in &run.windows {
        for s in &w.samples {
            let _ = monitor.push_sample(*s);
        }
    }
    monitor.flush().expect("service alive");
    let ev = run.windows[0].samples[0].event;
    assert!(session.read(ev).is_ok(), "posterior published after flush");
    let percentiles = |ns: &mut Vec<f64>| {
        ns.sort_by(|a, b| a.total_cmp(b));
        (ns[ns.len() / 2], ns[ns.len() * 99 / 100])
    };
    let mut read_ns: Vec<f64> = (0..reads)
        .map(|_| {
            let t = Instant::now();
            let _ = std::hint::black_box(session.read(ev));
            t.elapsed().as_nanos() as f64
        })
        .collect();
    let (read_p50, read_p99) = percentiles(&mut read_ns);

    let read_batch = 512usize;
    let batch_read = |session: &bayesperf_core::Session| -> f64 {
        let t = Instant::now();
        for _ in 0..read_batch {
            let _ = std::hint::black_box(session.read(ev));
        }
        t.elapsed().as_nanos() as f64 / read_batch as f64
    };
    let mut chunk_idx = 0usize;
    let shim_gate = with_budget(
        GateConfig::at_least("push_over_read", 10.0).seed(0xA2),
        (3, 8),
        (6, 16),
    )
    .run_ratio(
        || batch_read(&session),
        || {
            let chunk = chunks[chunk_idx % chunks.len()];
            chunk_idx += 1;
            let t = Instant::now();
            std::hint::black_box(warm_corr.push_chunk(chunk));
            t.elapsed().as_nanos() as f64
        },
    );
    check(&shim_gate);
    let warm_chunk_ns = shim_gate.mean_b;

    // Fleet read latency at 8 shards: a fused read is one lock-free
    // acquisition of the fleet snapshot cell — shard count must not leak
    // into the read path, so the fused/single read-cost ratio's upper
    // bound must stay within 5x.
    let n_shards = 8u32;
    let mut fleet =
        Fleet::new(&cat, FleetConfig::new(CorrectorConfig::for_run(&run))).expect("spawn fleet");
    let shard_ids: Vec<_> = (0..n_shards)
        .map(|i| {
            fleet
                .add_shard(ShardLabel::new(format!("m{i}"), 0))
                .expect("spawn shard")
        })
        .collect();
    for &id in &shard_ids {
        for w in &run.windows {
            for s in &w.samples {
                let _ = fleet.push_sample(id, *s);
            }
        }
    }
    fleet.flush().expect("fleet alive");
    let fleet_session = fleet.session().open().expect("fresh fleet");
    assert!(
        fleet_session.read(ev).is_ok(),
        "fused posterior published after flush"
    );
    let mut fleet_ns: Vec<f64> = (0..reads)
        .map(|_| {
            let t = Instant::now();
            let _ = std::hint::black_box(fleet_session.read(ev));
            t.elapsed().as_nanos() as f64
        })
        .collect();
    let (fleet_p50, fleet_p99) = percentiles(&mut fleet_ns);
    let batch_fleet_read = || -> f64 {
        let t = Instant::now();
        for _ in 0..read_batch {
            let _ = std::hint::black_box(fleet_session.read(ev));
        }
        t.elapsed().as_nanos() as f64 / read_batch as f64
    };
    let fleet_gate = with_budget(
        GateConfig::at_most("fleet_over_shim_read", 5.0).seed(0xA3),
        (3, 8),
        (6, 16),
    )
    .run_ratio(|| batch_read(&session), batch_fleet_read);
    check(&fleet_gate);

    // Fleet scrape throughput: one pass = snapshot + wire encode + wire
    // decode + precision-weighted fusion for all shards (the collector's
    // steady-state loop). No natural baseline arm exists, so this is a
    // level gate against a loose absolute ceiling — 1 ms per pass, ~150x
    // above the measured cost, a sanity bound that survives slow runners.
    let passes_per_sample = if quick() { 10 } else { 25 };
    let labels = fleet.shards();
    let sessions: Vec<_> = shard_ids
        .iter()
        .map(|&id| fleet.shard_session(id).expect("member"))
        .collect();
    let mut agg = Aggregator::new(cat.len());
    let mut view = SnapshotView::default();
    let mut buf = Vec::new();
    let mut scrape_bytes = 0usize;
    let mut scrape_pass = 0u64;
    let scrape_gate = with_budget(
        GateConfig::at_most("scrape_pass_ns", 1e6).seed(0xA4),
        (3, 8),
        (6, 16),
    )
    .run_level(|| {
        let t = Instant::now();
        for _ in 0..passes_per_sample {
            scrape_pass += 1;
            agg.begin();
            buf.clear();
            for ((id, label), session) in labels.iter().zip(&sessions) {
                session.snapshot_into(&mut view).expect("published");
                let record = wire::ShardSnapshot::from_view(*id, label.clone(), &view);
                let start = buf.len();
                wire::encode_shard(&record, &mut buf);
                let (decoded, _) = wire::decode_shard(&buf[start..]).expect("own encoding");
                agg.absorb(decoded.status(), &decoded.posteriors)
                    .expect("catalog-sized");
            }
            scrape_bytes = buf.len();
            std::hint::black_box(agg.fuse(scrape_pass).expect("shards absorbed"));
        }
        t.elapsed().as_nanos() as f64 / passes_per_sample as f64
    });
    check(&scrape_gate);

    // Networked scrape plane: a FleetScraper polling SimTransport shards
    // (virtual-clock links, so the protocol — not sleeps — is what's
    // timed). Active rounds bump every source first (full snapshots);
    // idle rounds leave the sources alone (tiny Unchanged acks). The
    // idle/active byte ratio is the delta-scrape payoff; rounds of the
    // two kinds are coin-flip interleaved, which is exactly the mixed
    // traffic a live collector sees.
    let net_shards = 32u32;
    let clean = LinkProfile::clean(0xBE7C4);
    let (mut net_scraper, net_sources) = net_fleet(cat.len(), net_shards, &clean);
    net_scraper.poll_round(); // prime caches outside the timed region
    let net_scraper = std::cell::RefCell::new(net_scraper);
    let mut active_ns = (0.0, 0u32);
    let mut idle_ns = (0.0, 0u32);
    let delta_gate = with_budget(
        GateConfig::at_most("idle_over_active_bytes", 0.2).seed(0xA5),
        (3, 10),
        (6, 24),
    )
    .run_ratio(
        || {
            for s in &net_sources {
                s.bump();
            }
            let t = Instant::now();
            let bytes = net_scraper.borrow_mut().poll_round().bytes_received;
            active_ns.0 += t.elapsed().as_nanos() as f64;
            active_ns.1 += 1;
            bytes as f64
        },
        || {
            let t = Instant::now();
            let bytes = net_scraper.borrow_mut().poll_round().bytes_received;
            idle_ns.0 += t.elapsed().as_nanos() as f64;
            idle_ns.1 += 1;
            bytes as f64
        },
    );
    check(&delta_gate);
    let net_active_ns = active_ns.0 / f64::from(active_ns.1.max(1));
    let net_idle_ns = idle_ns.0 / f64::from(idle_ns.1.max(1));

    // Lossy pass: 10% drop with lag that can blow the 5 ms deadline.
    // Contributor staleness (health age of every non-Dead endpoint, per
    // round) must stay bounded — retries + backoff recover faster than
    // the fleet decays. The gate is a level gate on the mean per-round
    // *worst* contributor age; the fixed sample floor (= the soak length)
    // keeps the full fault dynamics in the measurement.
    let net_drop = 0.10;
    let lossy = LinkProfile {
        latency_us: 1_000.0,
        latency_jitter_us: 3_000.0,
        ..LinkProfile::lossy(0x10_55, net_drop)
    };
    let (mut lossy_scraper, lossy_sources) = net_fleet(cat.len(), net_shards, &lossy);
    let lossy_reader = lossy_scraper.reader();
    let mut ages: Vec<u32> = Vec::new();
    let soak_rounds = if quick() { 50 } else { 300 };
    let staleness_gate = with_budget(
        GateConfig::at_most("staleness_worst_age", 5.0).seed(0xA6),
        (soak_rounds, soak_rounds),
        (soak_rounds, soak_rounds),
    )
    .run_level(|| {
        for s in &lossy_sources {
            s.bump();
        }
        lossy_scraper.poll_round();
        let snap = lossy_reader.read().expect("lossy fleet keeps publishing");
        let mut worst = 0u32;
        for h in snap.health.iter().filter(|h| h.state != HealthState::Dead) {
            worst = worst.max(h.age);
            ages.push(h.age);
        }
        f64::from(worst)
    });
    check(&staleness_gate);
    ages.sort_unstable();
    let staleness_p99 = ages[ages.len() * 99 / 100];

    // Multiplexing scheduler: the equal-budget claim — on the kmeans
    // workload over heterogeneous groups, the uncertainty-driven policy
    // must reach mean posterior variance no worse than blind round-robin.
    // The arms run whole closed loops (simulated PMU → streaming
    // corrector → scheduler) on interleaved per-arm seed streams, so the
    // ratio's interval reflects workload-seed variation, not one lucky
    // draw.
    let mux_windows = if quick() { 24 } else { 48 };
    let mux_bound = 6usize;
    let mux_schedule = GroupSchedule::from_events(&cat, &hetero_demo_events(&cat), mux_bound)
        .expect("groups fit the PMU");
    let mux_groups = mux_schedule.len();
    let closed = |policy: Box<dyn MuxPolicy>, seed: u64| {
        let mut truth = bayesperf_workloads::kmeans().instantiate(&cat, seed);
        run_closed_loop(
            &cat,
            &mut truth,
            PmuConfig {
                seed,
                ..PmuConfig::for_catalog(&cat)
            },
            mux_schedule.clone(),
            policy,
            CorrectorConfig::for_run(&run),
            mux_windows,
        )
    };
    // Both arms cycle the same three reference workload instances (seeds
    // 0..3), so the interval carries genuine cross-instance variation while
    // staying inside the envelope where the bare closed-loop corrector
    // keeps its posteriors converged. Outside it the mean-relative-variance
    // metric is heavy-tailed for *both* policies — an occasional diverged
    // chunk (which the supervised service would quarantine, but the bare
    // `run_closed_loop` corrector cannot) inflates the mean by orders of
    // magnitude at unlucky seeds; see `crates/bench/README.md`.
    let mux_ref_seeds = 3u64;
    let mut rr_seed = 0u64;
    let mut ud_seed = 0u64;
    let mux_gate = with_budget(
        GateConfig::at_most("ud_over_rr_var", 1.0).seed(0xA7),
        (2, 3),
        (3, 5),
    )
    .run_ratio(
        || {
            let r = closed(Box::new(RoundRobin), rr_seed % mux_ref_seeds);
            rr_seed += 1;
            r.mean_rel_var
        },
        || {
            let r = closed(Box::<UncertaintyDriven>::default(), ud_seed % mux_ref_seeds);
            ud_seed += 1;
            r.mean_rel_var
        },
    );
    check(&mux_gate);

    // Scheduler decision cost: one `MuxScheduler::next` against realistic
    // variances scraped from the live monitor's published snapshot — this
    // is the per-quantum cost the sampling loop pays, so it must stay in
    // nanoseconds, far under any real multiplexing quantum. Informational
    // (no gate): the closed-loop gate above already bounds decision
    // quality, and the cost sits four orders of magnitude under any
    // plausible quantum.
    let mut estimates = VarianceEstimates::new(cat.len());
    assert!(
        estimates.refresh(&session),
        "monitor flushed above, snapshot published"
    );
    let mut decider =
        MuxScheduler::new(mux_schedule.clone(), Box::new(UncertaintyDriven::default()));
    let mut decide_ns: Vec<f64> = (0..reads)
        .map(|_| {
            let t = Instant::now();
            std::hint::black_box(decider.next(Some(&estimates)));
            t.elapsed().as_nanos() as f64
        })
        .collect();
    let (decide_p50, decide_p99) = percentiles(&mut decide_ns);

    // Supervised recovery: crash the service repeatedly and time each
    // inject-panic → Running round trip. The policy pins the backoff at
    // 1 ms so the measurement is the supervisor machinery (detect the
    // unwind, reclaim the snapshot writer, respawn warm), not the
    // default exponential policy. A reader polls throughout: the
    // availability contract says every read mid-recovery serves the
    // last good snapshot — an exact invariant, asserted as such.
    let rec_cycles: usize = if quick() { 10 } else { 30 };
    let rec_monitor = Monitor::with_policy(
        &cat,
        CorrectorConfig::for_run(&run),
        1 << 16,
        SupervisorPolicy {
            max_consecutive_restarts: rec_cycles as u32 + 8,
            backoff_base: Duration::from_millis(1),
            backoff_cap: Duration::from_millis(1),
        },
    )
    .expect("spawn recovery monitor");
    let rec_session = rec_monitor.session().open().expect("fresh monitor");
    for w in &run.windows {
        for s in &w.samples {
            let _ = rec_monitor.push_sample(*s);
        }
    }
    rec_monitor.flush().expect("service alive");
    let mut restart_ns: Vec<f64> = Vec::with_capacity(rec_cycles);
    let mut reads_during_recovery = 0u64;
    let mut read_failures = 0u64;
    let mut rec_cycle = 0u64;
    let restart_gate = with_budget(
        GateConfig::at_most("restart_ns", 100e6).seed(0xA8),
        (rec_cycles, rec_cycles),
        (rec_cycles, rec_cycles),
    )
    .run_level(|| {
        let t = Instant::now();
        rec_monitor.inject_panic().expect("service alive");
        rec_cycle += 1;
        while rec_monitor.restarts() < rec_cycle
            || rec_monitor.service_state() != ServiceState::Running
        {
            reads_during_recovery += 1;
            if rec_session.read(ev).is_err() {
                read_failures += 1;
            }
            std::thread::yield_now();
        }
        let ns = t.elapsed().as_nanos() as f64;
        restart_ns.push(ns);
        ns
    });
    check(&restart_gate);
    let (restart_p50, restart_p99) = percentiles(&mut restart_ns);
    if std::env::var_os("BENCH_GATE").is_some() {
        assert_eq!(
            read_failures, 0,
            "every read during recovery must serve the last good snapshot \
             ({reads_during_recovery} reads)"
        );
    }

    // Steady-state guard overhead: the exact finite checks the service
    // runs per sample at ingest and per posterior at the publish
    // boundary, paired against fresh warm-inference runs so each pair
    // shares its machine conditions and the ≤ 2% bound stays resolvable
    // under drift. In practice the ratio is orders of magnitude smaller,
    // which is the point — containment is not a tax.
    let guard_sweeps = 20usize;
    let published = rec_session.snapshot().expect("flushed above");
    let guard_gate = with_budget(
        GateConfig::at_most("guard_over_warm", 0.02).seed(0xA9),
        (2, 4),
        (3, 6),
    )
    .run_paired(
        || warm_once(&mut warm_corr).0 / N_WINDOWS as f64,
        || {
            let t = Instant::now();
            for _ in 0..guard_sweeps {
                let mut rejected = 0u64;
                for w in &run.windows {
                    for s in &w.samples {
                        if !s.value.is_finite()
                            || !s.sub_mean.is_finite()
                            || !s.sub_sd.is_finite()
                            || s.sub_sd < 0.0
                        {
                            rejected += 1;
                        }
                    }
                }
                for _ in 0..N_WINDOWS {
                    for g in &published.posteriors {
                        if !(g.mean.is_finite() && g.var.is_finite() && g.var > 0.0) {
                            rejected += 1;
                        }
                    }
                }
                std::hint::black_box(rejected);
            }
            t.elapsed().as_nanos() as f64 / guard_sweeps as f64 / N_WINDOWS as f64
        },
    );
    check(&guard_gate);
    let guard_ns_per_window = guard_gate.mean_b;

    // Multi-source fusion: the observation-plane catalog end to end —
    // PMU-only vs PMU + the three simulated gauge sources at slower
    // cadences, each through a live monitor, on interleaved per-arm
    // workload seeds. Wall-clock covers push + pump + flush (the whole
    // ingest/inference pipeline); the gated statistic is the mean
    // gauge-event posterior spread ratio (fused / PMU-only): gauge
    // evidence must tighten it.
    let ms_windows = 18usize;
    let ms_run = |with_gauges: bool, seed: u64| -> (f64, f64) {
        use bayesperf_core::source::pump_sources;
        use bayesperf_events::{Arch, Catalog, Semantic};
        use bayesperf_simcpu::{pack_round_robin, GaugeProfile, Pmu, SampleSource, SimGauge};

        let ms_cat = Catalog::with_observation_plane(Arch::X86SkyLake);
        let mut truth = bayesperf_workloads::kmeans().instantiate(&ms_cat, seed);
        let events = vec![
            ms_cat.require(Semantic::IioRdTotal),
            ms_cat.require(Semantic::IioWrTotal),
            ms_cat.require(Semantic::UopsIssued),
            ms_cat.require(Semantic::L1dMisses),
        ];
        let schedule = pack_round_robin(&ms_cat, &events).expect("schedule fits");
        let pmu_cfg = PmuConfig::for_catalog(&ms_cat);
        let ms_run = Pmu::new(&ms_cat, pmu_cfg).run_multiplexed(&mut truth, &schedule, ms_windows);
        let ms_monitor = Monitor::new(&ms_cat, CorrectorConfig::for_run(&ms_run), 1 << 14)
            .expect("spawn monitor");
        let ms_session = ms_monitor.session().open().expect("open session");
        let mut sources: Vec<Box<dyn SampleSource + '_>> = if with_gauges {
            ms_cat.sources()[1..]
                .iter()
                .enumerate()
                .map(|(i, desc)| {
                    Box::new(
                        SimGauge::new(
                            &ms_cat,
                            desc.id,
                            GaugeProfile::for_source(desc, 11 + seed + i as u64),
                            &pmu_cfg,
                            bayesperf_workloads::kmeans().instantiate(&ms_cat, seed),
                        )
                        .expect("gauge source"),
                    ) as Box<dyn SampleSource + '_>
                })
                .collect()
        } else {
            Vec::new()
        };
        let t = Instant::now();
        for (w, win) in ms_run.windows.iter().enumerate() {
            for s in &win.samples {
                let _ = ms_monitor.push_sample(*s);
            }
            pump_sources(&ms_monitor, &mut sources, w as u32).expect("pump");
        }
        ms_monitor.sync().expect("sync");
        ms_monitor.flush().expect("flush");
        let elapsed_ns = t.elapsed().as_nanos() as f64;
        let mut gauge_sd = 0.0;
        for &sem in Semantic::gauges() {
            gauge_sd += ms_session
                .read(ms_cat.require(sem))
                .expect("gauge read")
                .std_dev;
        }
        gauge_sd /= Semantic::gauges().len() as f64;
        (elapsed_ns / ms_windows as f64, gauge_sd)
    };
    let ms_sources = 4usize;
    let ms_base_seed = 3u64;
    let mut ms_pmu = (0.0, 0u32);
    let mut ms_fused = (0.0, 0u32);
    let ms_gate = with_budget(
        GateConfig::at_most("fused_over_pmu_sd", 1.0).seed(0xAA),
        (2, 3),
        (3, 6),
    )
    .run_ratio(
        || {
            let (ns, sd) = ms_run(false, ms_base_seed + u64::from(ms_pmu.1));
            ms_pmu.0 += ns;
            ms_pmu.1 += 1;
            sd
        },
        || {
            let (ns, sd) = ms_run(true, ms_base_seed + u64::from(ms_fused.1));
            ms_fused.0 += ns;
            ms_fused.1 += 1;
            sd
        },
    );
    check(&ms_gate);
    let ms_pmu_ns = ms_pmu.0 / f64::from(ms_pmu.1.max(1));
    let ms_fused_ns = ms_fused.0 / f64::from(ms_fused.1.max(1));

    // Telemetry overhead: the exact per-chunk registry/span traffic the
    // monitor's service loop layers on top of warm inference (heartbeats,
    // late counters, chunk/window totals, sweep and publish histograms,
    // one span per pipeline stage), measured on its own and gated as a
    // fraction of the warm per-window time it rides on. A direct A/B of
    // full instrumented-vs-bare passes cannot resolve a 2% bound — pass
    // wall time drifts ~10% (even within back-to-back pairs) while the
    // true effect is well under 1% — so, like the guard gate, this one
    // times the added ops directly (they are purely additive straight-line
    // code on the service path) and pairs them against warm passes so
    // each pair shares machine conditions.
    let obs_tele = Telemetry::new();
    let obs_reg = obs_tele.registry();
    let obs_beats = obs_reg.counter("service.beats");
    let obs_late = obs_reg.counter("ingest.late_total");
    let obs_chunks = obs_reg.counter("service.chunks_run");
    let obs_windows = obs_reg.counter("service.windows_published");
    let obs_sweep = obs_reg.histogram("ep.sweep_ns");
    let obs_publish = obs_reg.histogram("service.publish_ns");
    let obs_spans = obs_tele.spans().recorder();
    let obs_sweeps = 20usize;
    let tele_ops_once = || -> f64 {
        let t = Instant::now();
        for _ in 0..obs_sweeps {
            for c in 0..chunks.len() {
                let started = obs_spans.now_ns();
                obs_beats.incr();
                obs_late.add(0);
                let sweep_start = obs_spans.now_ns();
                let sweep_end = obs_spans.now_ns();
                let w = (c * slices) as u32;
                for i in 0..slices {
                    obs_spans.record(Stage::Ingest, w + i as u32, started, sweep_start);
                }
                obs_sweep.record(sweep_end.saturating_sub(sweep_start));
                obs_spans.record(Stage::Assemble, w, started, sweep_start);
                obs_spans.record(Stage::EpSweep, w, sweep_start, sweep_end);
                obs_chunks.incr();
                obs_windows.add(slices as u64);
                obs_beats.incr();
                let publish_end = obs_spans.now_ns();
                obs_publish.record(publish_end.saturating_sub(sweep_end));
                for i in 0..slices {
                    obs_spans.record(Stage::Publish, w + i as u32, sweep_end, publish_end);
                }
            }
        }
        t.elapsed().as_nanos() as f64 / obs_sweeps as f64 / N_WINDOWS as f64
    };
    let _ = tele_ops_once();
    let obs_gate = with_budget(
        GateConfig::at_most("telemetry_over_warm", 0.02).seed(0xAB),
        (3, 6),
        (6, 12),
    )
    .run_paired(
        || warm_once(&mut warm_corr).0 / N_WINDOWS as f64,
        tele_ops_once,
    );
    check(&obs_gate);

    let json = format!(
        r#"{{
  "bench": "inference_warm_vs_cold",
  "workload": "kmeans",
  "windows": {N_WINDOWS},
  "chunk_slices": {slices},
  "alpha": 0.005,
  "cold": {{ "ns_per_window": {:.0}, "sweeps_per_chunk": {:.3},
            "mcmc_samples_per_site_update": {:.1}, "mcmc_samples_total": {},
            "n": {} }},
  "warm": {{ "ns_per_window": {:.0}, "sweeps_per_chunk": {:.3},
            "mcmc_samples_per_site_update": {:.1}, "mcmc_samples_total": {},
            "jump_site_resets": {}, "n": {} }},
  "speedup": {{ "mean": {:.3},
               "gate": {} }},
  "shim_read": {{ "reads": {reads}, "p50_ns": {:.0}, "p99_ns": {:.0},
                 "warm_push_chunk_ns": {:.0},
                 "gate": {} }},
  "fleet_read": {{ "shards": {n_shards}, "reads": {reads}, "p50_ns": {:.0},
                  "p99_ns": {:.0},
                  "gate": {} }},
  "fleet_scrape": {{ "shards": {n_shards}, "passes_per_sample": {passes_per_sample},
                    "ns_per_shard": {:.0}, "bytes_per_pass": {scrape_bytes},
                    "gate": {} }},
  "fleet_scrape_net": {{ "shards": {net_shards},
                        "active_ns_per_round": {:.0}, "idle_ns_per_round": {:.0},
                        "active_bytes_per_round": {:.0}, "idle_bytes_per_round": {:.0},
                        "lossy_drop_prob": {net_drop}, "staleness_p99_rounds": {staleness_p99},
                        "delta_gate": {},
                        "staleness_gate": {} }},
  "mux_schedule": {{ "groups": {mux_groups}, "bound": {mux_bound},
                    "windows": {mux_windows}, "decisions": {reads},
                    "decide_p50_ns": {:.0}, "decide_p99_ns": {:.0},
                    "rr_mean_rel_var": {:.5}, "ud_mean_rel_var": {:.5},
                    "gate": {} }},
  "supervised_recovery": {{ "cycles": {rec_cycles}, "restart_p50_ns": {:.0},
                           "restart_p99_ns": {:.0},
                           "reads_during_recovery": {reads_during_recovery},
                           "read_failures": {read_failures},
                           "guard_ns_per_window": {:.1},
                           "restart_gate": {},
                           "guard_gate": {} }},
  "multi_source_fuse": {{ "windows": {ms_windows}, "sources": {ms_sources},
                         "pmu_only_ns_per_window": {:.0},
                         "fused_ns_per_window": {:.0},
                         "pmu_only_gauge_sd": {:.1}, "fused_gauge_sd": {:.1},
                         "gate": {} }},
  "obs_overhead": {{ "warm_ns_per_window": {:.0},
                    "telemetry_ns_per_window": {:.1},
                    "gate": {} }}
}}
"#,
        cold_ns_per_window,
        cold_stats.sweeps_per_chunk(),
        cold_stats.samples_per_site_update(),
        cold_stats.mcmc_samples,
        speedup.n_b,
        warm_ns_per_window,
        warm_stats.sweeps_per_chunk(),
        warm_stats.samples_per_site_update(),
        warm_stats.mcmc_samples,
        warm_stats.jump_site_resets,
        speedup.n_a,
        speedup.stat,
        speedup.json(),
        read_p50,
        read_p99,
        warm_chunk_ns,
        shim_gate.json(),
        fleet_p50,
        fleet_p99,
        fleet_gate.json(),
        scrape_gate.stat / f64::from(n_shards),
        scrape_gate.json(),
        net_active_ns,
        net_idle_ns,
        delta_gate.mean_a,
        delta_gate.mean_b,
        delta_gate.json(),
        staleness_gate.json(),
        decide_p50,
        decide_p99,
        mux_gate.mean_a,
        mux_gate.mean_b,
        mux_gate.json(),
        restart_p50,
        restart_p99,
        guard_ns_per_window,
        restart_gate.json(),
        guard_gate.json(),
        ms_pmu_ns,
        ms_fused_ns,
        ms_gate.mean_a,
        ms_gate.mean_b,
        ms_gate.json(),
        obs_gate.mean_a,
        obs_gate.mean_b,
        obs_gate.json(),
    );

    let path = std::env::var("BENCH_JSON_PATH").unwrap_or_else(|_| "BENCH_inference.json".into());
    std::fs::write(&path, &json).expect("write BENCH_inference.json");
    print!("{json}");
    eprintln!(
        "wrote {path} (steady-state warm speedup {:.2}x in [{:.2}, {:.2}], n={}/{})",
        speedup.stat, speedup.lo, speedup.hi, speedup.n_a, speedup.n_b
    );
}
