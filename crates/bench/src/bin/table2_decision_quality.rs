//! §6.3 decision quality: shuffle-makespan improvement of the ML
//! schedulers over a static-NIC baseline, with and without BayesPerf.

use bayesperf_mlsched::cf::CollabFilter;
use bayesperf_mlsched::pcie::{Fabric, Flow, Node};
use bayesperf_mlsched::rl::{CorrectionQuality, Trainer};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// CF scheduler: impute throughput over (contention-context × NIC) cells
/// from sparse noisy observations, then pick the best NIC per context.
fn cf_improvement(noise: f64, seed: u64) -> f64 {
    let fabric = Fabric::standard();
    let nic_flows = [
        Flow {
            src: Node::Nic(0),
            dst: Node::Cpu(1),
        },
        Flow {
            src: Node::Nic(1),
            dst: Node::Cpu(0),
        },
    ];
    let halo = [
        Flow {
            src: Node::Gpu(1),
            dst: Node::Gpu(2),
        },
        Flow {
            src: Node::Gpu(4),
            dst: Node::Gpu(3),
        },
    ];
    // Columns: NIC choice x message size (the transfer configurations the
    // scheduler may pick); rows: (c0, c1) contention contexts.
    let msgs = [64.0 * 1024.0, 256.0 * 1024.0, 1024.0 * 1024.0];
    let grid = 8usize;
    let n_cols = 2 * msgs.len();
    let bw = |c: f64, nic: usize, msg: f64| {
        let iso = fabric.observed_bandwidth(&[nic_flows[nic]], 0, msg);
        let con = fabric.observed_bandwidth(&[nic_flows[nic], halo[nic]], 0, msg);
        (1.0 - c) * iso + c * con
    };
    let mut rng = StdRng::seed_from_u64(seed);
    let mut observed = Vec::new();
    let mut truth = vec![vec![0.0f64; n_cols]; grid * grid];
    for i in 0..grid {
        for j in 0..grid {
            let (c0, c1) = (i as f64 / (grid - 1) as f64, j as f64 / (grid - 1) as f64);
            let row = i * grid + j;
            for (mi, &msg) in msgs.iter().enumerate() {
                truth[row][mi] = bw(c0, 0, msg);
                truth[row][msgs.len() + mi] = bw(c1, 1, msg);
            }
            #[allow(clippy::needless_range_loop)]
            for col in 0..n_cols {
                // Our sweep's optimum lands at 50% observed entries (the
                // paper sweeps 30-80% and reports its own optimum at 75%).
                if rng.gen::<f64>() > 0.5 {
                    // Normalized to ~O(1) so SGD stays stable.
                    let noisy =
                        truth[row][col] / 12.5 * (1.0 + noise * (rng.gen::<f64>() * 2.0 - 1.0));
                    observed.push((row, col, noisy));
                }
            }
        }
    }
    let cf = CollabFilter::train(
        grid * grid,
        n_cols,
        &observed,
        2,
        1500,
        0.05,
        0.002,
        &mut rng,
    );
    // Makespan over all contexts: time = bytes / bw; static = NIC0 at the
    // middle message size.
    let (mut t_cf, mut t_static) = (0.0, 0.0);
    for (row, t) in truth.iter().enumerate() {
        let pick = cf.best_column(row);
        t_cf += 1.0 / t[pick];
        t_static += 1.0 / t[1];
    }
    (t_static - t_cf) / t_static
}

fn rl_improvement(q: CorrectionQuality, seed: u64) -> f64 {
    let mut t = Trainer::new(q, seed);
    let _ = t.train(8000);
    t.evaluate(3000).improvement_vs_static()
}

fn mean<const N: usize>(f: impl Fn(u64) -> f64, seeds: [u64; N]) -> f64 {
    seeds.iter().map(|&s| f(s)).sum::<f64>() / N as f64
}

fn main() {
    println!("# §6.3: average shuffle makespan improvement vs static NIC assignment");
    println!("scheduler\tinputs\timprovement_pct");
    let cf_linux = 100.0 * mean(|s| cf_improvement(0.80, s), [1, 2, 3]);
    let cf_bayes = 100.0 * mean(|s| cf_improvement(0.15, s), [1, 2, 3]);
    let rl_linux = 100.0 * mean(|s| rl_improvement(CorrectionQuality::Linux, s), [11, 13]);
    let rl_bayes = 100.0
        * mean(
            |s| rl_improvement(CorrectionQuality::BayesPerfAccel, s),
            [11, 13],
        );
    println!("CollabFilter\tLinux\t{cf_linux:.1}");
    println!("CollabFilter\tBayesPerf\t{cf_bayes:.1}");
    println!("ActorCritic\tLinux\t{rl_linux:.1}");
    println!("ActorCritic\tBayesPerf\t{rl_bayes:.1}");
    println!();
    println!("# paper: ML schedulers improve makespan 15.1% (CF) / 22.3% (RL) over no-ML;");
    println!("# BayesPerf adds a further 8.7% / 19% over Linux-quality inputs.");
    println!(
        "# measured additional gain from BayesPerf: CF {:+.1} points, RL {:+.1} points",
        cf_bayes - cf_linux,
        rl_bayes - rl_linux
    );
}
