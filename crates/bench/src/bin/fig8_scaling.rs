//! Fig. 8: scaling of measurement error with the number of events sampled
//! (KMeans workload), for Linux, CounterMiner, BayesPerf and WM+Pin.

use bayesperf_bench::{evaluate_workload, event_pool, EvalConfig};
use bayesperf_events::{Arch, Catalog};
use bayesperf_workloads::kmeans;

fn main() {
    let cfg = EvalConfig {
        windows: 48,
        runs: 3,
        ..EvalConfig::default()
    };
    println!("# Fig. 8: error (%) vs number of multiplexed counters (KMeans)");
    for arch in Arch::all() {
        let cat = Catalog::new(arch);
        println!("## {arch}");
        if arch == Arch::X86SkyLake {
            println!("n_counters\tLinux\tCM\tBayesPerf\tWM+Pin");
        } else {
            println!("n_counters\tLinux\tCM\tBayesPerf");
        }
        for k in [10usize, 15, 20, 25, 30, 35] {
            let events = event_pool(&cat, k);
            let e = evaluate_workload(&cat, &kmeans(), &events, &cfg);
            if arch == Arch::X86SkyLake {
                // WM+Pin corrects only instruction counts (a fixed counter
                // here), so its multiplexed error tracks Linux.
                println!(
                    "{k}\t{:.1}\t{:.1}\t{:.1}\t{:.1}",
                    e.linux, e.cm, e.bayesperf, e.wm_pin
                );
            } else {
                println!("{k}\t{:.1}\t{:.1}\t{:.1}", e.linux, e.cm, e.bayesperf);
            }
        }
    }
}
