//! Fig. 10: decrease in scheduler training time due to BayesPerf — loss
//! vs iteration for the four input-correction configurations.

use bayesperf_mlsched::rl::{CorrectionQuality, Trainer};

const ITERS: usize = 9000;
const SEEDS: [u64; 3] = [11, 13, 17];
const THRESH: f64 = 0.06;

fn main() {
    let qualities = [
        CorrectionQuality::BayesPerfAccel,
        CorrectionQuality::BayesPerfCpu,
        CorrectionQuality::CounterMiner,
        CorrectionQuality::Linux,
    ];
    let mut curves: Vec<Vec<f64>> = Vec::new();
    let mut conv: Vec<f64> = Vec::new();
    for &q in &qualities {
        let mut mean_curve = vec![0.0f64; ITERS];
        let mut mean_conv = 0.0;
        for &s in &SEEDS {
            let r = Trainer::new(q, s).train(ITERS);
            for (m, l) in mean_curve.iter_mut().zip(&r.loss_curve) {
                *m += l / SEEDS.len() as f64;
            }
            mean_conv += r.converged_at(THRESH).unwrap_or(ITERS) as f64 / SEEDS.len() as f64;
        }
        curves.push(mean_curve);
        conv.push(mean_conv);
    }

    println!(
        "# Fig. 10: training loss vs iteration (mean of {} seeds)",
        SEEDS.len()
    );
    println!("iteration\tBayesPerf(Acc)\tBayesPerf(CPU)\tCM\tLinux");
    for i in (0..ITERS).step_by(250) {
        println!(
            "{i}\t{:.3}\t{:.3}\t{:.3}\t{:.3}",
            curves[0][i], curves[1][i], curves[2][i], curves[3][i]
        );
    }
    println!();
    println!("# iterations to sustained regret < {THRESH}:");
    for (q, c) in qualities.iter().zip(&conv) {
        println!("#   {:<16} {:>6.0}", q.label(), c);
    }
    let linux = conv[3];
    println!(
        "# reduction vs Linux: Acc {:.1}% (paper 37%), CPU {:.1}% (paper 28.5%), CM {:.1}% (paper 12.5%)",
        100.0 * (1.0 - conv[0] / linux),
        100.0 * (1.0 - conv[1] / linux),
        100.0 * (1.0 - conv[2] / linux),
    );
}
