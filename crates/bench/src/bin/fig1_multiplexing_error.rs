//! Fig. 1: errors due to event multiplexing vs number of multiplexed
//! counters (10..35), averaged over ten application runs.

use bayesperf_bench::{evaluate_workload, event_pool, EvalConfig};
use bayesperf_events::{Arch, Catalog};
use bayesperf_workloads::kmeans;

fn main() {
    let cat = Catalog::new(Arch::X86SkyLake);
    let cfg = EvalConfig {
        windows: 48,
        runs: 10,
        ..EvalConfig::default()
    };
    println!("# Fig. 1: average error (%) due to event multiplexing (x86, KMeans, 10 runs)");
    println!("n_counters\tavg_error_pct");
    for k in [10usize, 15, 20, 25, 30, 35] {
        let events = event_pool(&cat, k);
        let e = evaluate_workload(&cat, &kmeans(), &events, &cfg);
        println!("{k}\t{:.1}", e.linux);
    }
}
