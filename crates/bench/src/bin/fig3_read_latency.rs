//! Fig. 3: latency overhead of reading counters under each correction
//! scheme. Native paths use the modeled syscall/rdpmc constants; the
//! software-inference paths are *measured* on this machine and amortized
//! per counter read; the accelerator path comes from the DES.

use bayesperf_accel::{AccelConfig, Accelerator, InferenceJob, ReadPath};
use bayesperf_baselines::{CounterMiner, SeriesEstimator};
use bayesperf_bench::derived_event_hpcs;
use bayesperf_core::corrector::{Corrector, CorrectorConfig};
use bayesperf_events::{Arch, Catalog};
use bayesperf_simcpu::{pack_round_robin, Pmu, PmuConfig};
use bayesperf_workloads::kmeans;
use std::time::Instant;

fn main() {
    let cat = Catalog::new(Arch::X86SkyLake);
    let clock_ghz = 2.5;
    let mut truth = kmeans().instantiate(&cat, 0);
    let pmu = Pmu::new(&cat, PmuConfig::for_catalog(&cat));
    let events = derived_event_hpcs(&cat);
    let schedule = pack_round_robin(&cat, &events).unwrap();
    let run = pmu.run_multiplexed(&mut truth, &schedule, 12);
    let reads = (run.windows.len() * events.len()) as f64;

    // BayesPerf (CPU): full inference amortized over the posterior reads
    // it serves.
    let t0 = Instant::now();
    let mut corrector = Corrector::new(&cat, CorrectorConfig::for_run(&run));
    let _ = std::hint::black_box(corrector.correct_run(&run));
    let cpu_cycles = t0.elapsed().as_nanos() as f64 * clock_ghz / reads;

    // CounterMiner: per-read sliding-window recompute.
    let cm = CounterMiner::new();
    let t0 = Instant::now();
    for &ev in &events {
        let _ = std::hint::black_box(cm.estimate(&run, ev));
    }
    let cm_cycles = t0.elapsed().as_nanos() as f64 * clock_ghz / reads;

    let acc = Accelerator::new(AccelConfig::ppc64());
    let job = acc.simulate_job(&InferenceJob::typical());

    println!("# Fig. 3: avg overhead of reading counters (cycles @2.5 GHz)");
    println!("method\tcycles");
    println!("Linux\t{}", ReadPath::LinuxSyscall.host_cycles());
    println!("Linux+RDPMC\t{}", ReadPath::Rdpmc.host_cycles());
    println!("BayesPerf (CPU)\t{:.0}", cpu_cycles.max(1.0));
    println!("BayesPerf (Acc)\t{}", acc.read_latency_cycles());
    println!("CounterMiner\t{:.0}", cm_cycles.max(1.0));
    println!();
    println!(
        "# Acc read overhead vs native: {:.2}% (paper: <2%); accel job latency {:.0} us (off the read path)",
        100.0 * (acc.read_latency_cycles() as f64 / ReadPath::LinuxSyscall.host_cycles() as f64 - 1.0),
        job.total_us(acc.config()),
    );
}
