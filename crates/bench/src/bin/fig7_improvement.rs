//! Fig. 7: normalized improvement in counter error when using BayesPerf,
//! against the Linux and CounterMiner baselines, per workload and
//! architecture.

use bayesperf_bench::{derived_event_hpcs, evaluate_workload, EvalConfig};
use bayesperf_events::{Arch, Catalog};
use bayesperf_workloads::all_workloads;

fn main() {
    let cfg = EvalConfig::default();
    let cats: Vec<Catalog> = Arch::all().iter().map(|&a| Catalog::new(a)).collect();
    println!("# Fig. 7: normalized improvement (baseline error / BayesPerf error)");
    println!("workload\tvsLinux(x86)\tvsLinux(ppc64)\tvsCM(x86)\tvsCM(ppc64)");
    for w in all_workloads() {
        let mut row = vec![w.name().to_string()];
        let mut per_arch = Vec::new();
        for cat in &cats {
            let events = derived_event_hpcs(cat);
            let e = evaluate_workload(cat, &w, &events, &cfg);
            per_arch.push(e);
        }
        for e in &per_arch {
            row.push(format!("{:.2}", e.linux / e.bayesperf.max(1e-9)));
        }
        for e in &per_arch {
            row.push(format!("{:.2}", e.cm / e.bayesperf.max(1e-9)));
        }
        println!("{}", row.join("\t"));
    }
}
