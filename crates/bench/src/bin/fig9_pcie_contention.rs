//! Fig. 9 (right panel): PCIe bandwidth vs message size, isolated vs under
//! contention with a NIC shuffle sharing the uplink.

use bayesperf_mlsched::pcie::{Fabric, Flow, Node};

fn main() {
    let fabric = Fabric::standard();
    let halo = Flow {
        src: Node::Gpu(1),
        dst: Node::Gpu(2),
    };
    let shuffle = Flow {
        src: Node::Nic(0),
        dst: Node::Cpu(1),
    };
    println!("# Fig. 9: GPU-GPU bandwidth (GB/s) vs message size");
    println!("msg_bytes\tisolated\tcontention\tslowdown_x");
    for p in 8..=22 {
        let size = (1u64 << p) as f64;
        let iso = fabric.observed_bandwidth(&[halo], 0, size);
        let con = fabric.observed_bandwidth(&[halo, shuffle], 0, size);
        println!(
            "{}\t{:.2}\t{:.2}\t{:.2}",
            1u64 << p,
            iso,
            con,
            iso / con - 1.0
        );
    }
}
