//! The shared evaluation harness behind the figure/table binaries.
//!
//! Every experiment follows the paper's §6.2 method:
//!
//! 1. run the workload in *sampling* mode (multiplexed counters) — once
//!    with Linux's round-robin schedule (for the Linux/CM/WM+Pin
//!    estimators) and once with BayesPerf's overlap-transformed schedule;
//! 2. run the workload twice in *polling* mode (dedicated counters) with
//!    different run seeds — the reference trace and the nondeterminism
//!    normalizer;
//! 3. per event, compute the DTW-aligned relative error of each
//!    estimator's per-window series against the polling reference,
//!    subtracting the polling-vs-polling floor (§6.2's normalization);
//! 4. average across events and application runs.

pub mod gate;

use bayesperf_baselines::{CounterMiner, LinuxScaling, SeriesEstimator, WmPin};
use bayesperf_core::corrector::{Corrector, CorrectorConfig};
use bayesperf_core::metrics::adjusted_error;
use bayesperf_core::scheduler::ScheduleTransformer;
use bayesperf_events::{Catalog, EventId};
use bayesperf_simcpu::{pack_round_robin, Configuration, Pmu, PmuConfig};
use bayesperf_workloads::PhaseProgram;
use std::collections::BTreeSet;

/// Evaluation parameters.
#[derive(Debug, Clone, Copy)]
pub struct EvalConfig {
    /// Multiplexing windows per run.
    pub windows: usize,
    /// Independent application runs to average over.
    pub runs: usize,
    /// Sakoe-Chiba band half-width for DTW.
    pub band: usize,
    /// Base seed.
    pub seed: u64,
}

impl Default for EvalConfig {
    fn default() -> Self {
        EvalConfig {
            windows: 48,
            runs: 3,
            band: 6,
            seed: 0,
        }
    }
}

/// Per-method average errors (percent).
#[derive(Debug, Clone, Copy, Default)]
pub struct MethodErrors {
    /// Linux enabled/running scaling.
    pub linux: f64,
    /// CounterMiner.
    pub cm: f64,
    /// BayesPerf (posterior MLE).
    pub bayesperf: f64,
    /// WM+Pin (instruction-count-only correction).
    pub wm_pin: f64,
}

/// The programmable HPC events needed by the catalog's ten derived events
/// (the §6.2 measurement set).
pub fn derived_event_hpcs(catalog: &Catalog) -> Vec<EventId> {
    let mut set = BTreeSet::new();
    for d in catalog.derived_events() {
        set.extend(d.events());
    }
    set.into_iter()
        .filter(|&e| catalog.event(e).is_programmable())
        .collect()
}

/// The first `k` events of the catalog's multiplex pool (the Fig. 1 / 8
/// counter-count sweep).
pub fn event_pool(catalog: &Catalog, k: usize) -> Vec<EventId> {
    catalog.programmable_events().into_iter().take(k).collect()
}

/// The fig6-style warm-vs-cold benchmark fixture: kmeans through the
/// derived-event HPC set, multiplexed across rotating configurations —
/// shared by the criterion bench and the `bench_json` baseline emitter so
/// the two measure the same workload.
pub fn fig6_fixture(n_windows: usize) -> (Catalog, bayesperf_simcpu::MultiplexRun) {
    let cat = Catalog::new(bayesperf_events::Arch::X86SkyLake);
    let mut truth = bayesperf_workloads::kmeans().instantiate(&cat, 0);
    let pmu = Pmu::new(&cat, PmuConfig::for_catalog(&cat));
    let events = derived_event_hpcs(&cat);
    let schedule = pack_round_robin(&cat, &events).unwrap();
    let run = pmu.run_multiplexed(&mut truth, &schedule, n_windows);
    (cat, run)
}

/// Evaluates one workload on one catalog with all four estimators.
pub fn evaluate_workload(
    catalog: &Catalog,
    program: &PhaseProgram,
    events: &[EventId],
    cfg: &EvalConfig,
) -> MethodErrors {
    let transformer = ScheduleTransformer::new(catalog);
    let rr = pack_round_robin(catalog, events).expect("schedulable event set");
    let bp_schedule = transformer.plan(events);

    let mut totals = MethodErrors::default();
    for run_idx in 0..cfg.runs {
        let seed = cfg.seed + run_idx as u64;
        let e = evaluate_once(
            catalog,
            program,
            events,
            &rr,
            &bp_schedule.configs,
            seed,
            cfg,
        );
        totals.linux += e.linux / cfg.runs as f64;
        totals.cm += e.cm / cfg.runs as f64;
        totals.bayesperf += e.bayesperf / cfg.runs as f64;
        totals.wm_pin += e.wm_pin / cfg.runs as f64;
    }
    totals
}

fn evaluate_once(
    catalog: &Catalog,
    program: &PhaseProgram,
    events: &[EventId],
    rr: &[Configuration],
    bp: &[Configuration],
    seed: u64,
    cfg: &EvalConfig,
) -> MethodErrors {
    let pmu_cfg = PmuConfig {
        seed,
        ..PmuConfig::for_catalog(catalog)
    };
    let pmu = Pmu::new(catalog, pmu_cfg);

    // Sampling runs (the same application run seen through two schedules).
    let mut truth = program.instantiate(catalog, seed);
    let rr_run = pmu.run_multiplexed(&mut truth, rr, cfg.windows);
    let mut truth = program.instantiate(catalog, seed);
    let bp_run = pmu.run_multiplexed(&mut truth, bp, cfg.windows);

    // Polling references: two more application runs.
    let mut truth = program.instantiate(catalog, seed + 101);
    let poll = pmu.run_polling(&mut truth, events, cfg.windows);
    let mut truth = program.instantiate(catalog, seed + 202);
    let poll2 = pmu.run_polling(&mut truth, events, cfg.windows);

    let linux = LinuxScaling::new();
    let cm = CounterMiner::new();
    let wm = WmPin::new(catalog);
    // A moderately larger EP/MCMC budget than the corrector's fast
    // default: the §6.2 comparisons are about estimator quality, so give
    // the sampler enough moments that the outcome reflects the model, not
    // Monte-Carlo luck.
    // Quality-first: cold EP per chunk — the §6.2 comparison measures the
    // model, so it forgoes the warm-start throughput path (which trades a
    // little accuracy for a multi-x per-window speedup; the warm-vs-cold
    // benches quantify that trade separately).
    let mut bp_cfg = CorrectorConfig::for_run(&bp_run).cold_start();
    bp_cfg.ep.max_sweeps = 6;
    bp_cfg.ep.mcmc.burn_in = 100;
    bp_cfg.ep.mcmc.samples = 250;
    let mut corrector = Corrector::new(catalog, bp_cfg);
    let posterior = corrector.correct_run(&bp_run);

    let mut errors = MethodErrors::default();
    let n = events.len() as f64;
    for &ev in events {
        let reference: Vec<f64> = poll.windows.iter().map(|w| w.truth[ev.index()]).collect();
        let reference = noisy_reference(&poll, ev).unwrap_or(reference);
        let reference2 = noisy_reference(&poll2, ev).expect("event polled");
        let err =
            |series: &[f64]| 100.0 * adjusted_error(series, &reference, &reference2, cfg.band);
        errors.linux += err(&linux.estimate(&rr_run, ev)) / n;
        errors.cm += err(&cm.estimate(&rr_run, ev)) / n;
        errors.wm_pin += err(&wm.estimate(&rr_run, ev)) / n;
        errors.bayesperf += err(&posterior.mle_series(ev)) / n;
    }
    errors
}

fn noisy_reference(run: &bayesperf_simcpu::MultiplexRun, ev: EventId) -> Option<Vec<f64>> {
    let mut out = Vec::with_capacity(run.windows.len());
    for w in &run.windows {
        out.push(w.sample_for(ev)?.value);
    }
    Some(out)
}

/// Formats a TSV row.
pub fn tsv_row(cells: &[String]) -> String {
    cells.join("\t")
}

#[cfg(test)]
mod tests {
    use super::*;
    use bayesperf_events::Arch;
    use bayesperf_workloads::kmeans;

    #[test]
    fn derived_hpcs_are_programmable_and_numerous() {
        for arch in Arch::all() {
            let cat = Catalog::new(arch);
            let events = derived_event_hpcs(&cat);
            assert!(events.len() >= 12, "{arch}: {}", events.len());
            assert!(events.iter().all(|&e| cat.event(e).is_programmable()));
        }
    }

    #[test]
    fn evaluation_reproduces_the_headline_ordering() {
        // One workload, one run, small windows. Robust claims: both
        // correctors clearly beat Linux scaling; BayesPerf at least halves
        // the error. (CM-vs-BayesPerf ordering under the DTW metric is
        // budget-dependent — see EXPERIMENTS.md.)
        let cat = Catalog::new(Arch::X86SkyLake);
        let events = derived_event_hpcs(&cat);
        let cfg = EvalConfig {
            windows: 32,
            runs: 1,
            ..EvalConfig::default()
        };
        let e = evaluate_workload(&cat, &kmeans(), &events, &cfg);
        assert!(
            e.bayesperf < 0.6 * e.linux && e.cm < e.linux,
            "ordering violated: {e:?}"
        );
    }
}
