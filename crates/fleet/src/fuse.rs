//! Analytic posterior fusion: precision-weighted Gaussian products.
//!
//! Each shard's BayesPerf monitor publishes, per event, a Gaussian
//! posterior `N(μᵢ, σᵢ²)` over the event's per-window count. Because the
//! per-shard output is a *distribution* rather than a noisy point value,
//! cross-machine aggregation is closed-form instead of lossy averaging:
//! treating the shards' posteriors as independent Gaussian evidence about
//! the fleet-level rate, their normalized product is again Gaussian with
//!
//! ```text
//!   λ = Σᵢ 1/σᵢ²          (precisions add)
//!   η = Σᵢ μᵢ/σᵢ²         (precision-weighted means add)
//!   fused = N(η/λ, 1/λ)
//! ```
//!
//! A confident shard (small σ²) dominates the fused mean; a vague one
//! (large σ² — e.g. an event the shard never multiplexed in) contributes
//! almost nothing — exactly the weighting raw-counter averaging gets
//! wrong, since it weights noisy and clean machines equally. With one
//! contributing shard the fusion **short-circuits to identity** (no
//! `1/(1/σ²)` round trip), so a degenerate one-shard fleet reproduces the
//! single-monitor posterior bit for bit.

// The ISSUE-7 robustness audit: this file's non-test code must report
// failures as typed errors, never panic on them.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use crate::health::ShardHealthView;
use crate::topology::{ShardId, ShardLabel};
use bayesperf_core::ShimError;
use bayesperf_inference::Gaussian;

/// Fuses independent Gaussian posteriors by precision weighting. Returns
/// `None` on an empty slice; returns the input unchanged when it has
/// exactly one element (bit-exact degenerate case).
///
/// Never panics on valid (positive-finite-variance) inputs: when the
/// precision sums overflow `f64` — possible with individually-valid
/// subnormal-variance posteriors, since `Σ 1/σᵢ²` can exceed `f64::MAX`
/// — the product is no longer representable, so the fusion falls back to
/// the sharpest single input, which the overflowing sum is dominated by
/// anyway. The aggregator thread must survive any decodable snapshot.
pub fn fuse_gaussians(posteriors: &[Gaussian]) -> Option<Gaussian> {
    match posteriors {
        [] => None,
        [only] => Some(*only),
        many => {
            let mut precision = 0.0;
            let mut eta = 0.0;
            for g in many {
                let p = 1.0 / g.var;
                precision += p;
                eta += g.mean * p;
            }
            let mean = eta / precision;
            let var = 1.0 / precision;
            if mean.is_finite() && var.is_finite() && var > 0.0 {
                Some(Gaussian::new(mean, var))
            } else {
                // Overflowed arithmetic: the exact product is dominated
                // by the most precise input, so serve that one verbatim.
                many.iter().min_by(|a, b| a.var.total_cmp(&b.var)).copied()
            }
        }
    }
}

/// One contributing shard's position in a fused snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardStatus {
    /// Which shard.
    pub shard: ShardId,
    /// Its topology label.
    pub label: ShardLabel,
    /// Most recent corrected window the shard has published.
    pub window: u32,
    /// Inference runs the shard has published.
    pub chunk: u64,
    /// Per-source dropped-late sample counts, indexed by raw source id
    /// (`SnapshotView::late_by_source` at scrape time): observation-plane
    /// health, fused into the fleet summary so a chronically late gauge
    /// on one shard is visible from the aggregator. Empty when no source
    /// has dropped anything (and for pre-observation-plane shards).
    pub late_by_source: Vec<u64>,
}

/// A fleet-level posterior snapshot: per-event fused posteriors plus the
/// per-shard inputs they were fused from, published through the lock-free
/// snapshot cell so fleet reads stay wait-free.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetSnapshot {
    /// 1-based aggregation pass counter (monotone per fleet).
    pub generation: u64,
    /// Contributing shards, sorted by id (shards with no published
    /// posterior yet are absent).
    pub shards: Vec<ShardStatus>,
    /// Catalog-indexed precision-weighted fused posteriors.
    pub fused: Vec<Gaussian>,
    /// Catalog-indexed posteriors per contributing shard, parallel to
    /// `shards` — the raw material for percentile and straggler views.
    pub per_shard: Vec<Vec<Gaussian>>,
    /// Health of *every* registered endpoint this round, sorted by shard
    /// id — including Dead or never-heard-from shards absent from
    /// `shards`, so degradation is observable rather than silent.
    pub health: Vec<ShardHealthView>,
}

impl FleetSnapshot {
    /// The most advanced window any contributing shard has corrected.
    pub fn max_window(&self) -> u32 {
        self.shards.iter().map(|s| s.window).max().unwrap_or(0)
    }

    /// Shards trailing the fleet frontier by more than `lag` windows —
    /// the slow scrapers / overloaded machines view.
    pub fn stragglers(&self, lag: u32) -> Vec<ShardId> {
        let frontier = self.max_window();
        self.shards
            .iter()
            .filter(|s| s.window.saturating_add(lag) < frontier)
            .map(|s| s.shard)
            .collect()
    }

    /// This shard's own posterior of `event_index`, if it contributed.
    pub fn shard_posterior(&self, shard: ShardId, event_index: usize) -> Option<Gaussian> {
        let i = self.shards.iter().position(|s| s.shard == shard)?;
        self.per_shard[i].get(event_index).copied()
    }

    /// This shard's health row, if the shard is registered.
    pub fn shard_health(&self, shard: ShardId) -> Option<&ShardHealthView> {
        self.health.iter().find(|h| h.shard == shard)
    }

    /// The `q`-quantile (nearest-rank, `q` in `[0, 1]`) of the shards'
    /// posterior *means* for an event — the cross-fleet distribution view
    /// (`q = 0.99` answers "what does the worst machine look like").
    pub fn percentile_mean(&self, event_index: usize, q: f64) -> Option<f64> {
        if self.shards.is_empty() {
            return None;
        }
        let mut means: Vec<f64> = self
            .per_shard
            .iter()
            .map(|p| p.get(event_index).map(|g| g.mean))
            .collect::<Option<_>>()?;
        means.sort_by(|a, b| a.total_cmp(b));
        let rank = ((q.clamp(0.0, 1.0) * means.len() as f64).ceil() as usize)
            .saturating_sub(1)
            .min(means.len() - 1);
        Some(means[rank])
    }
}

/// Accumulates per-shard snapshots and fuses them into a
/// [`FleetSnapshot`]. Reusable across scrape passes (entry buffers are
/// recycled by [`Aggregator::begin`]); feed it either in-process
/// [`SnapshotView`](bayesperf_core::SnapshotView)s or wire-decoded
/// [`ShardSnapshot`](crate::wire::ShardSnapshot)s — fusion does not care
/// which side of the byte boundary the posteriors came from.
#[derive(Debug)]
pub struct Aggregator {
    n_events: usize,
    entries: Vec<(ShardStatus, ShardHealthView, Vec<Gaussian>)>,
    /// Entries in use this pass; the tail of `entries` is kept as an
    /// allocation pool.
    used: usize,
    /// Health rows of shards with *no* fusable contribution this pass
    /// (Dead, or never heard from) — published in the snapshot so they
    /// stay observable.
    noted: Vec<ShardHealthView>,
}

impl Aggregator {
    /// Creates an aggregator for a catalog of `n_events` events.
    pub fn new(n_events: usize) -> Aggregator {
        Aggregator {
            n_events,
            entries: Vec::new(),
            used: 0,
            noted: Vec::new(),
        }
    }

    /// Starts a new scrape pass, recycling the previous pass's buffers.
    pub fn begin(&mut self) {
        self.used = 0;
        self.noted.clear();
    }

    /// Adds one shard's posteriors to the current pass as a current
    /// (Healthy) contribution — the in-process scrape path, where the
    /// aggregator reads the shard's snapshot cell directly and staleness
    /// cannot arise.
    ///
    /// Fails with [`ShimError::CatalogMismatch`] when the posterior
    /// vector is not catalog-sized (a scrape from a foreign catalog).
    pub fn absorb(
        &mut self,
        status: ShardStatus,
        posteriors: &[Gaussian],
    ) -> Result<(), ShimError> {
        let health = ShardHealthView::healthy(status.shard);
        self.absorb_shard(status, health, posteriors)
    }

    /// Adds one shard's posteriors with explicit health — the networked
    /// scrape path, where the contribution may be a cached copy whose
    /// variance must be inflated by `health.inflation` before fusion. A
    /// [`Dead`](crate::HealthState::Dead) contribution is recorded in the
    /// health rows but excluded from fusion.
    pub fn absorb_shard(
        &mut self,
        status: ShardStatus,
        health: ShardHealthView,
        posteriors: &[Gaussian],
    ) -> Result<(), ShimError> {
        if posteriors.len() != self.n_events {
            return Err(ShimError::CatalogMismatch {
                expected: self.n_events,
                got: posteriors.len(),
            });
        }
        if !health.state.contributes() {
            self.noted.push(health);
            return Ok(());
        }
        if self.used == self.entries.len() {
            self.entries.push((status, health, posteriors.to_vec()));
        } else {
            let slot = &mut self.entries[self.used];
            slot.0 = status;
            slot.1 = health;
            slot.2.clear();
            slot.2.extend_from_slice(posteriors);
        }
        self.used += 1;
        Ok(())
    }

    /// Records the health of a shard with nothing to fuse this pass
    /// (Dead, or no snapshot ever received), so the published snapshot
    /// still carries its row.
    pub fn note_health(&mut self, health: ShardHealthView) {
        self.noted.push(health);
    }

    /// Shards absorbed as fusion contributors in the current pass.
    pub fn absorbed(&self) -> usize {
        self.used
    }

    /// Fuses the absorbed shards into a fleet snapshot (sorted by shard
    /// id, so fusion order — and thus floating-point rounding — is
    /// deterministic regardless of scrape order). Stale contributions are
    /// fused with variance `σ²·inflation` (inflation ≥ 1, so the fused
    /// posterior can only widen relative to fusing them fresh); a Healthy
    /// contribution's inflation is exactly 1 and is fused bit-verbatim,
    /// preserving the one-shard identity guarantee.
    ///
    /// Fails with [`ShimError::NoShards`] when nothing was absorbed.
    pub fn fuse(&mut self, generation: u64) -> Result<FleetSnapshot, ShimError> {
        if self.used == 0 {
            return Err(ShimError::NoShards);
        }
        self.entries[..self.used].sort_by_key(|(s, _, _)| s.shard);
        let live = &self.entries[..self.used];
        let mut scratch = Vec::with_capacity(self.used);
        let mut fused = Vec::with_capacity(self.n_events);
        for e in 0..self.n_events {
            scratch.clear();
            scratch.extend(live.iter().map(|(_, h, p)| inflate(p[e], h.inflation)));
            // `live` is non-empty here (`used > 0`), so the product
            // always exists; the typed fallback keeps this path
            // unwinding-free regardless.
            fused.push(fuse_gaussians(&scratch).ok_or(ShimError::NoShards)?);
        }
        let mut health: Vec<ShardHealthView> = live
            .iter()
            .map(|(_, h, _)| h.clone())
            .chain(self.noted.iter().cloned())
            .collect();
        health.sort_by_key(|h| h.shard);
        Ok(FleetSnapshot {
            generation,
            shards: live.iter().map(|(s, _, _)| s.clone()).collect(),
            fused,
            per_shard: live.iter().map(|(_, _, p)| p.clone()).collect(),
            health,
        })
    }
}

/// Widens `g` by the staleness `inflation` factor. `inflation == 1.0`
/// returns `g` bit-verbatim (the Healthy path must not perturb the
/// single-shard identity guarantee); an overflowing product clamps to
/// `f64::MAX` — still a valid, maximally vague Gaussian.
fn inflate(g: Gaussian, inflation: f64) -> Gaussian {
    if inflation == 1.0 {
        return g;
    }
    let var = g.var * inflation.max(1.0);
    Gaussian::new(g.mean, if var.is_finite() { var } else { f64::MAX })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn status(id: u32, window: u32) -> ShardStatus {
        ShardStatus {
            shard: ShardId::from_raw(id),
            label: ShardLabel::new(format!("m{id}"), 0),
            window,
            chunk: u64::from(window / 6 + 1),
            late_by_source: Vec::new(),
        }
    }

    #[test]
    fn fusion_matches_the_closed_form_product() {
        let inputs = [
            Gaussian::new(10.0, 4.0),
            Gaussian::new(14.0, 1.0),
            Gaussian::new(9.0, 0.25),
        ];
        let fused = fuse_gaussians(&inputs).unwrap();
        let lambda = 0.25 + 1.0 + 4.0;
        let eta = 10.0 * 0.25 + 14.0 * 1.0 + 9.0 * 4.0;
        assert!((fused.mean - eta / lambda).abs() < 1e-9);
        assert!((fused.var - 1.0 / lambda).abs() < 1e-9);
    }

    #[test]
    fn single_input_fusion_is_bitwise_identity() {
        // 0.3 is the classic 1/(1/x) != x case; the short-circuit must
        // keep the degenerate one-shard fleet bit-exact.
        let g = Gaussian::new(0.1 + 0.2, 0.3);
        let fused = fuse_gaussians(std::slice::from_ref(&g)).unwrap();
        assert_eq!(fused.mean.to_bits(), g.mean.to_bits());
        assert_eq!(fused.var.to_bits(), g.var.to_bits());
        assert!(fuse_gaussians(&[]).is_none());
    }

    #[test]
    fn overflowing_precision_sums_fall_back_instead_of_panicking() {
        // Each input is individually valid (positive finite variance; the
        // wire decoder accepts it), but Σ 1/σᵢ² overflows to infinity —
        // the naive product would build a zero-variance Gaussian and
        // panic the aggregator thread.
        let tiny = Gaussian::new(1.0, f64::MIN_POSITIVE);
        let fused = fuse_gaussians(&[tiny; 5]).unwrap();
        assert!(fused.var > 0.0 && fused.var.is_finite());
        assert!(fused.mean.is_finite());
        // The fallback serves the sharpest input verbatim.
        assert_eq!(fused.var.to_bits(), tiny.var.to_bits());
        assert_eq!(fused.mean.to_bits(), tiny.mean.to_bits());
        // Same overflow on the η side (huge mean × huge precision): the
        // fused mean must stay finite, never ±inf/NaN.
        let wide = Gaussian::new(-5.0e9, f64::MIN_POSITIVE);
        let fused = fuse_gaussians(&[wide, tiny, Gaussian::new(2.0, 1.0)]).unwrap();
        assert!(fused.mean.is_finite() && fused.var.is_finite() && fused.var > 0.0);
    }

    #[test]
    fn confident_shards_dominate_the_fused_mean() {
        let vague = Gaussian::new(100.0, 1.0e6);
        let sharp = Gaussian::new(10.0, 0.01);
        let fused = fuse_gaussians(&[vague, sharp]).unwrap();
        assert!((fused.mean - 10.0).abs() < 0.01, "mean {}", fused.mean);
        assert!(fused.var < 0.01);
    }

    #[test]
    fn aggregator_fuses_sorted_by_shard_id_and_recycles() {
        let mut agg = Aggregator::new(2);
        assert_eq!(agg.fuse(1), Err(ShimError::NoShards));
        let a = [Gaussian::new(1.0, 1.0), Gaussian::new(2.0, 1.0)];
        let b = [Gaussian::new(3.0, 1.0), Gaussian::new(4.0, 1.0)];
        // Absorb out of id order; fusion must sort.
        agg.begin();
        agg.absorb(status(5, 11), &b).unwrap();
        agg.absorb(status(2, 12), &a).unwrap();
        let snap = agg.fuse(1).unwrap();
        assert_eq!(snap.shards[0].shard, ShardId::from_raw(2));
        assert_eq!(snap.shards[1].shard, ShardId::from_raw(5));
        assert!((snap.fused[0].mean - 2.0).abs() < 1e-12);
        assert!((snap.fused[0].var - 0.5).abs() < 1e-12);
        assert_eq!(snap.max_window(), 12);
        // Second pass reuses buffers and forgets the first pass's shards.
        agg.begin();
        agg.absorb(status(7, 3), &a).unwrap();
        let snap = agg.fuse(2).unwrap();
        assert_eq!(snap.shards.len(), 1);
        assert_eq!(snap.generation, 2);
        // One contributor: bit-exact identity.
        assert_eq!(snap.fused[1].var.to_bits(), a[1].var.to_bits());
    }

    #[test]
    fn mismatched_catalog_size_is_a_typed_error() {
        let mut agg = Aggregator::new(3);
        let short = [Gaussian::new(1.0, 1.0)];
        assert_eq!(
            agg.absorb(status(0, 0), &short),
            Err(ShimError::CatalogMismatch {
                expected: 3,
                got: 1
            })
        );
    }

    #[test]
    fn stale_contributions_widen_never_sharpen_the_fused_posterior() {
        use crate::health::{HealthPolicy, ShardHealth, ShardHealthView};
        let a = [Gaussian::new(10.0, 2.0)];
        let b = [Gaussian::new(14.0, 3.0)];
        let mut agg = Aggregator::new(1);
        // All-healthy baseline.
        agg.begin();
        agg.absorb(status(0, 5), &a).unwrap();
        agg.absorb(status(1, 5), &b).unwrap();
        let fresh = agg.fuse(1).unwrap();
        // Same inputs, shard 1 stale at age 5 under the default policy.
        let policy = HealthPolicy::default();
        let stale = ShardHealthView::observe(
            ShardId::from_raw(1),
            &ShardHealth {
                age: 5,
                ..ShardHealth::default()
            },
            &policy,
        );
        assert!(stale.inflation > 1.0);
        agg.begin();
        agg.absorb(status(0, 5), &a).unwrap();
        agg.absorb_shard(status(1, 5), stale.clone(), &b).unwrap();
        let degraded = agg.fuse(2).unwrap();
        assert!(
            degraded.fused[0].var > fresh.fused[0].var,
            "stale evidence must widen: {} vs {}",
            degraded.fused[0].var,
            fresh.fused[0].var
        );
        // The published health rows carry the inflation that was used.
        assert_eq!(degraded.health.len(), 2);
        assert_eq!(
            degraded
                .shard_health(ShardId::from_raw(1))
                .unwrap()
                .inflation,
            stale.inflation
        );
        // per_shard keeps the *uninflated* posteriors (drill-down shows
        // what the shard said, not what fusion weighed it as).
        assert_eq!(degraded.per_shard[1][0].var.to_bits(), b[0].var.to_bits());
        // Inflation overflow clamps instead of panicking.
        let wide = inflate(Gaussian::new(1.0, f64::MAX / 2.0), 64.0);
        assert!(wide.var.is_finite());
    }

    #[test]
    fn dead_shards_are_recorded_but_excluded_from_fusion() {
        use crate::health::{HealthPolicy, HealthState, ShardHealth, ShardHealthView};
        let policy = HealthPolicy::default();
        let dead = ShardHealthView::observe(
            ShardId::from_raw(3),
            &ShardHealth {
                age: policy.dead_after,
                timeouts: 11,
                ..ShardHealth::default()
            },
            &policy,
        );
        assert_eq!(dead.state, HealthState::Dead);
        let mut agg = Aggregator::new(1);
        agg.begin();
        let a = [Gaussian::new(10.0, 2.0)];
        agg.absorb(status(0, 5), &a).unwrap();
        agg.absorb_shard(status(3, 9), dead, &[Gaussian::new(99.0, 1e-9)])
            .unwrap();
        agg.note_health(ShardHealthView::observe(
            ShardId::from_raw(8),
            &ShardHealth {
                age: 30,
                ..ShardHealth::default()
            },
            &policy,
        ));
        assert_eq!(agg.absorbed(), 1);
        let snap = agg.fuse(1).unwrap();
        // Fusion saw only shard 0 — bit-identical single contributor.
        assert_eq!(snap.shards.len(), 1);
        assert_eq!(snap.fused[0].var.to_bits(), a[0].var.to_bits());
        // But all three endpoints are observable, sorted by id.
        let ids: Vec<u32> = snap.health.iter().map(|h| h.shard.raw()).collect();
        assert_eq!(ids, vec![0, 3, 8]);
        assert_eq!(snap.health[1].state, HealthState::Dead);
        assert_eq!(snap.health[1].timeouts, 11);
        assert!(snap.shard_health(ShardId::from_raw(4)).is_none());
        // A pass of only-dead shards has nothing to fuse.
        agg.begin();
        let dead2 = snap.health[1].clone();
        agg.absorb_shard(status(3, 9), dead2, &a).unwrap();
        assert_eq!(agg.fuse(2), Err(ShimError::NoShards));
    }

    #[test]
    fn straggler_and_percentile_views() {
        let mut agg = Aggregator::new(1);
        agg.begin();
        for (id, window, mean) in [(0u32, 20u32, 5.0), (1, 19, 7.0), (2, 8, 100.0)] {
            agg.absorb(status(id, window), &[Gaussian::new(mean, 1.0)])
                .unwrap();
        }
        let snap = agg.fuse(1).unwrap();
        assert_eq!(snap.stragglers(2), vec![ShardId::from_raw(2)]);
        assert_eq!(snap.stragglers(100), Vec::<ShardId>::new());
        assert_eq!(snap.percentile_mean(0, 0.5), Some(7.0));
        assert_eq!(snap.percentile_mean(0, 1.0), Some(100.0));
        assert_eq!(snap.percentile_mean(0, 0.0), Some(5.0));
        assert_eq!(
            snap.shard_posterior(ShardId::from_raw(2), 0).unwrap().mean,
            100.0
        );
        assert!(snap.shard_posterior(ShardId::from_raw(9), 0).is_none());
    }
}
