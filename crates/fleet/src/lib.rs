//! Fleet aggregation for BayesPerf: sharded monitors, analytic posterior
//! fusion, and a binary snapshot wire codec.
//!
//! A single [`Monitor`](bayesperf_core::Monitor) corrects one machine's
//! (socket's) HPC stream into per-event Gaussian posteriors. Production
//! monitoring watches *fleets*: hundreds of machines running the same
//! service, each with its own noise, phase and load. Because BayesPerf's
//! per-machine output is a distribution — not a noisy point estimate —
//! cross-machine aggregation has a closed form instead of the lossy raw
//! averaging conventional collectors do:
//!
//! ```text
//!   shard i posterior:  N(μᵢ, σᵢ²)
//!   fleet posterior:    N(η/λ, 1/λ),  λ = Σ 1/σᵢ²,  η = Σ μᵢ/σᵢ²
//! ```
//!
//! i.e. a **precision-weighted product**: machines whose schedule
//! actually multiplexed an event in (small σ²) dominate; machines that
//! only know the event through invariant links (large σ²) barely
//! contribute. Averaging raw counters weighs both equally — exactly the
//! error mode per-event validation studies flag. See [`fuse`] for the
//! math and the degenerate-case (one shard ⇒ bit-identical) guarantee.
//!
//! The crate adds three layers on top of `bayesperf_core`:
//!
//! * [`Fleet`] — owns N topology-labelled shards (one [`Monitor`] each:
//!   own ring, own inference thread), routes samples to shards through a
//!   lock-free membership snapshot cell, and runs a background
//!   aggregator that scrapes shard snapshots, fuses them and publishes a
//!   [`FleetSnapshot`] through a second snapshot cell. Fleet reads are
//!   as wait-free as single-session reads at any shard count.
//! * [`FleetSession`] — the fleet-scoped mirror of
//!   [`Session`](bayesperf_core::Session):
//!   [`read`](FleetSession::read) /
//!   [`read_group`](FleetSession::read_group) /
//!   [`read_derived`](FleetSession::read_derived) /
//!   [`subscribe`](FleetSession::subscribe), plus per-shard drill-down
//!   ([`shard_readings`](FleetSession::shard_readings)) and
//!   percentile/straggler views on [`FleetSnapshot`].
//! * [`wire`] — the versioned varint binary codec carrying shard
//!   snapshots and fleet summaries across byte boundaries (multi-process
//!   scrape topologies), with typed, panic-free decoding.
//! * [`net`] + [`health`] — the networked scrape plane: per-shard
//!   scrape servers (TCP / Unix-domain, length-framed wire messages),
//!   a concurrent aggregator-side [`FleetScraper`] with deadlines,
//!   retries and per-endpoint backoff, delta scrapes keyed on snapshot
//!   stamps, and a per-shard Healthy → Degraded → Stale → Dead state
//!   machine whose staleness inflates cached contributions' variance
//!   before fusion — a degraded fleet's posterior only ever widens.
//!   [`SimTransport`] wraps the same protocol in seeded
//!   [`LinkState`](bayesperf_simcpu::LinkState) fault models for
//!   deterministic 100+ shard lossy-fleet simulation.
//!
//! [`Monitor`]: bayesperf_core::Monitor

mod fleet;
pub mod fuse;
pub mod health;
pub mod net;
mod topology;
pub mod wire;

pub use fleet::{
    Fleet, FleetConfig, FleetGroupReading, FleetRouter, FleetSession, FleetSessionBuilder,
    FleetUpdate, FleetUpdates,
};
pub use fuse::{fuse_gaussians, Aggregator, FleetSnapshot, ShardStatus};
pub use health::{FailureKind, HealthPolicy, HealthState, ShardHealth, ShardHealthView};
pub use net::{
    FleetScraper, RoundReport, ScrapeConfig, ScrapeResponder, ScrapeServer, ScrapeTotals,
    ShardTransport, SimTransport, SnapshotSource, TcpTransport, UnixTransport,
};
pub use topology::{ShardId, ShardLabel};
