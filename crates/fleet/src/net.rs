//! The networked scrape plane: per-shard scrape servers, an
//! aggregator-side concurrent scrape client, and a deterministic
//! fault-injection transport.
//!
//! PR 4's fleet kept shards and aggregator in one process; this module
//! ships [`wire`] frames across real byte boundaries and — the part that
//! matters — survives them. The pieces:
//!
//! * [`ScrapeResponder`] — shard-side request handler: answers a
//!   [`ScrapeRequest`](wire::ScrapeRequest) with either a tiny
//!   `Unchanged` ack (the client's stamp is current — steady-state bytes
//!   scale with change rate, not catalog size) or a full snapshot.
//! * [`ScrapeServer`] — serves a responder over TCP or a Unix-domain
//!   socket, length-framed with the hard [`wire::MAX_FRAME_LEN`] bound.
//! * [`ShardTransport`] — one request/response exchange against a
//!   deadline. [`TcpTransport`] and [`UnixTransport`] talk to real
//!   sockets (lazy reconnect, remaining-deadline bookkeeping);
//!   [`SimTransport`] wraps a responder in a seeded
//!   [`bayesperf_simcpu::LinkState`] so 100+ shard fleets
//!   with drops, lag, corruption and partitions run deterministically
//!   in-process with virtual time.
//! * [`FleetScraper`] — the aggregator: polls every endpoint each
//!   [`poll_round`](FleetScraper::poll_round) (concurrently, with
//!   bounded retries and per-endpoint exponential backoff with seeded
//!   jitter), feeds the per-shard [`health`](crate::health) state
//!   machine, and publishes health-aware fused [`FleetSnapshot`]s
//!   through a lock-free snapshot cell.
//!
//! Failure philosophy: a scrape failure is *evidence about the link*,
//! not about the shard's data — the cached posterior is still the best
//! available opinion, it is just aging. So failures widen (inflate) the
//! cached contribution rather than dropping it, until the cache is so
//! old ([`HealthState::Dead`]) that keeping it
//! would let an arbitrarily stale opinion steer the fleet posterior.

use crate::fuse::{Aggregator, FleetSnapshot, ShardStatus};
use crate::health::{FailureKind, HealthPolicy, HealthState, ShardHealth, ShardHealthView};
use crate::topology::{ShardId, ShardLabel};
use crate::wire;
use bayesperf_core::{snapshot_cell, Session, ShimError, SnapshotReader, SnapshotView};
use bayesperf_inference::Gaussian;
use bayesperf_obs::{
    labeled, merge_metrics, Counter, FlightEvent, Histogram, MetricSnapshot, SpanRecorder, Stage,
    Telemetry,
};
use bayesperf_simcpu::{LinkFate, LinkState};
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

/// SplitMix64, for backoff jitter (same mixer the simulator uses).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// What a scrape server serves: a stamped posterior snapshot. Implemented
/// by [`Session`] (the real shard path) and by anything test code wants
/// to stand in for one.
pub trait SnapshotSource {
    /// The `(window, chunk)` stamp of the current snapshot — the cheap
    /// delta-scrape pre-check. Errors mean "no snapshot published yet".
    fn source_stamp(&self) -> Result<(u32, u64), ShimError>;
    /// The current snapshot view.
    fn source_view(&self) -> Result<SnapshotView, ShimError>;
    /// The source's metrics-registry dump, if it has a telemetry plane.
    /// The default `None` keeps plain test sources trivial; the server
    /// answers a telemetry request against it with an empty dump.
    fn source_metrics(&self) -> Option<Vec<MetricSnapshot>> {
        None
    }
}

impl SnapshotSource for Session {
    fn source_stamp(&self) -> Result<(u32, u64), ShimError> {
        self.snapshot_stamp()
    }
    fn source_view(&self) -> Result<SnapshotView, ShimError> {
        self.snapshot()
    }
    fn source_metrics(&self) -> Option<Vec<MetricSnapshot>> {
        Some(self.telemetry().registry().snapshot())
    }
}

impl<S: SnapshotSource + ?Sized> SnapshotSource for Arc<S> {
    fn source_stamp(&self) -> Result<(u32, u64), ShimError> {
        (**self).source_stamp()
    }
    fn source_view(&self) -> Result<SnapshotView, ShimError> {
        (**self).source_view()
    }
    fn source_metrics(&self) -> Option<Vec<MetricSnapshot>> {
        (**self).source_metrics()
    }
}

/// Shard-side scrape logic, transport-agnostic: turns one decoded
/// request into one encoded response. Both the socket servers and the
/// in-process [`SimTransport`] drive the same responder, so the fault
/// harness exercises the exact protocol the sockets carry.
#[derive(Debug)]
pub struct ScrapeResponder<S> {
    shard: ShardId,
    label: ShardLabel,
    source: S,
}

impl<S: SnapshotSource> ScrapeResponder<S> {
    /// A responder serving `source` as shard `shard`.
    pub fn new(shard: ShardId, label: ShardLabel, source: S) -> ScrapeResponder<S> {
        ScrapeResponder {
            shard,
            label,
            source,
        }
    }

    /// Which shard this responder serves as.
    pub fn shard(&self) -> ShardId {
        self.shard
    }

    /// Answers `req` into `out` (cleared first). The client's stamp being
    /// current — or the source having no snapshot yet — yields a tiny
    /// `Unchanged` ack; anything else yields the full snapshot.
    pub fn respond(&self, req: &wire::ScrapeRequest, out: &mut Vec<u8>) {
        out.clear();
        let stamp = match self.source_stamp_now() {
            // No snapshot yet: (0, 0) is the reserved "nothing published"
            // stamp (chunk counters are 1-based).
            None => return wire::encode_unchanged(0, 0, out),
            Some(stamp) => stamp,
        };
        if stamp == (req.last_window, req.last_chunk) {
            return wire::encode_unchanged(stamp.0, stamp.1, out);
        }
        match self.source.source_view() {
            Ok(view) => wire::encode_shard_view(self.shard, &self.label, &view, out),
            // The snapshot vanished between stamp and view (source shut
            // down); answer as "nothing published".
            Err(_) => wire::encode_unchanged(0, 0, out),
        }
    }

    /// Answers one raw request payload of *either* request kind into
    /// `out`: scrape requests via [`respond`](ScrapeResponder::respond),
    /// telemetry requests (wire v3) with the source's metrics-registry
    /// dump. A frame that is not a request is a typed error — connection
    /// handlers drop the peer, the server stays up.
    pub fn respond_frame(&self, payload: &[u8], out: &mut Vec<u8>) -> Result<(), ShimError> {
        match wire::peek_kind(payload)? {
            wire::KIND_SCRAPE_REQ => {
                let (req, _) = wire::decode_request(payload)?;
                self.respond(&req, out);
                Ok(())
            }
            wire::KIND_TELEMETRY_REQ => {
                wire::decode_telemetry_request(payload)?;
                out.clear();
                let metrics = self.source.source_metrics().unwrap_or_default();
                wire::encode_telemetry(&metrics, out);
                Ok(())
            }
            _ => Err(ShimError::WireMalformed {
                what: "record kind is not a request",
            }),
        }
    }

    fn source_stamp_now(&self) -> Option<(u32, u64)> {
        self.source.source_stamp().ok()
    }
}

/// Serves a [`ScrapeResponder`] over TCP or a Unix-domain socket:
/// accepts connections on a background thread, one handler thread per
/// connection, all frames bounded by [`wire::MAX_FRAME_LEN`]. Shuts down
/// (and joins the accept thread) on drop.
pub struct ScrapeServer {
    shutdown: Arc<AtomicBool>,
    accept: Option<thread::JoinHandle<()>>,
    addr: Option<SocketAddr>,
    unix_path: Option<PathBuf>,
}

/// How long blocked accept/read calls wait before re-checking shutdown.
const SERVER_POLL: Duration = Duration::from_millis(20);

impl ScrapeServer {
    /// Serves `responder` on TCP `addr` (e.g. `"127.0.0.1:0"` to let the
    /// OS pick a port — read it back with [`local_addr`]).
    ///
    /// [`local_addr`]: ScrapeServer::local_addr
    pub fn bind_tcp<S>(addr: &str, responder: ScrapeResponder<S>) -> std::io::Result<ScrapeServer>
    where
        S: SnapshotSource + Send + Sync + 'static,
    {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let stop = Arc::clone(&shutdown);
        let responder = Arc::new(responder);
        let accept = thread::spawn(move || loop {
            if stop.load(Ordering::Acquire) {
                return;
            }
            match listener.accept() {
                Ok((stream, _)) => {
                    spawn_conn_tcp(stream, Arc::clone(&responder), Arc::clone(&stop))
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => thread::sleep(SERVER_POLL),
                Err(_) => thread::sleep(SERVER_POLL),
            }
        });
        Ok(ScrapeServer {
            shutdown,
            accept: Some(accept),
            addr: Some(local),
            unix_path: None,
        })
    }

    /// Serves `responder` on a Unix-domain socket at `path` (removed on
    /// shutdown; a stale socket file from a crashed process is replaced).
    pub fn bind_unix<S>(path: &Path, responder: ScrapeResponder<S>) -> std::io::Result<ScrapeServer>
    where
        S: SnapshotSource + Send + Sync + 'static,
    {
        let _ = std::fs::remove_file(path);
        let listener = UnixListener::bind(path)?;
        listener.set_nonblocking(true)?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let stop = Arc::clone(&shutdown);
        let responder = Arc::new(responder);
        let accept = thread::spawn(move || loop {
            if stop.load(Ordering::Acquire) {
                return;
            }
            match listener.accept() {
                Ok((stream, _)) => {
                    spawn_conn_unix(stream, Arc::clone(&responder), Arc::clone(&stop))
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => thread::sleep(SERVER_POLL),
                Err(_) => thread::sleep(SERVER_POLL),
            }
        });
        Ok(ScrapeServer {
            shutdown,
            accept: Some(accept),
            addr: None,
            unix_path: Some(path.to_path_buf()),
        })
    }

    /// The TCP address actually bound (None for Unix-domain servers).
    pub fn local_addr(&self) -> Option<SocketAddr> {
        self.addr
    }
}

impl Drop for ScrapeServer {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::Release);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        if let Some(path) = self.unix_path.take() {
            let _ = std::fs::remove_file(path);
        }
    }
}

fn spawn_conn_tcp<S>(stream: TcpStream, responder: Arc<ScrapeResponder<S>>, stop: Arc<AtomicBool>)
where
    S: SnapshotSource + Send + Sync + 'static,
{
    let _ = stream.set_read_timeout(Some(SERVER_POLL));
    let _ = stream.set_nodelay(true);
    thread::spawn(move || serve_conn(stream, &responder, &stop));
}

fn spawn_conn_unix<S>(stream: UnixStream, responder: Arc<ScrapeResponder<S>>, stop: Arc<AtomicBool>)
where
    S: SnapshotSource + Send + Sync + 'static,
{
    let _ = stream.set_read_timeout(Some(SERVER_POLL));
    thread::spawn(move || serve_conn(stream, &responder, &stop));
}

/// One connection's request loop: framed request in, framed response
/// out, until EOF, a protocol violation, or server shutdown.
fn serve_conn<C, S>(mut stream: C, responder: &ScrapeResponder<S>, stop: &AtomicBool)
where
    C: Read + Write,
    S: SnapshotSource,
{
    let mut payload = Vec::new();
    let mut response = Vec::new();
    let mut framed = Vec::new();
    loop {
        let mut prefix = [0u8; wire::FRAME_PREFIX_LEN];
        match read_exact_poll(&mut stream, &mut prefix, stop) {
            ReadOutcome::Done => {}
            ReadOutcome::Closed => return,
        }
        // A hostile length prefix is rejected here, before any
        // allocation — the connection is dropped, not the server.
        let len = match wire::frame_len(prefix) {
            Ok(len) => len,
            Err(_) => return,
        };
        payload.clear();
        payload.resize(len, 0);
        match read_exact_poll(&mut stream, &mut payload, stop) {
            ReadOutcome::Done => {}
            ReadOutcome::Closed => return,
        }
        if responder.respond_frame(&payload, &mut response).is_err() {
            return;
        }
        framed.clear();
        if wire::encode_frame(&response, &mut framed).is_err() {
            return;
        }
        if stream.write_all(&framed).is_err() {
            return;
        }
    }
}

enum ReadOutcome {
    Done,
    Closed,
}

/// `read_exact` that re-checks `stop` across read-timeout ticks, so
/// handler threads exit promptly on shutdown instead of blocking in a
/// dead read.
fn read_exact_poll<C: Read>(stream: &mut C, buf: &mut [u8], stop: &AtomicBool) -> ReadOutcome {
    let mut filled = 0;
    while filled < buf.len() {
        if stop.load(Ordering::Acquire) {
            return ReadOutcome::Closed;
        }
        match stream.read(&mut buf[filled..]) {
            Ok(0) => return ReadOutcome::Closed,
            Ok(n) => filled += n,
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {}
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return ReadOutcome::Closed,
        }
    }
    ReadOutcome::Done
}

/// One request/response exchange against a shard, under a deadline.
/// Implementations own reconnection; a failed exchange must leave the
/// transport ready to try again next round.
pub trait ShardTransport: Send {
    /// Sends the *unframed* request payload and returns the unframed
    /// response payload. Framing (where the transport has a byte stream)
    /// is the transport's business.
    fn exchange(&mut self, request: &[u8], deadline: Duration) -> Result<Vec<u8>, ShimError>;
}

/// Scrapes a shard over TCP: lazy connect, one in-flight request at a
/// time, remaining-deadline bookkeeping across connect/write/read. Any
/// failure drops the connection so the next round reconnects fresh.
#[derive(Debug)]
pub struct TcpTransport {
    addr: SocketAddr,
    stream: Option<TcpStream>,
}

impl TcpTransport {
    /// A transport that will (re)connect to `addr` on demand.
    pub fn new(addr: SocketAddr) -> TcpTransport {
        TcpTransport { addr, stream: None }
    }
}

impl ShardTransport for TcpTransport {
    fn exchange(&mut self, request: &[u8], deadline: Duration) -> Result<Vec<u8>, ShimError> {
        let start = Instant::now();
        if self.stream.is_none() {
            let stream = TcpStream::connect_timeout(&self.addr, deadline).map_err(io_error)?;
            stream.set_nodelay(true).map_err(io_error)?;
            self.stream = Some(stream);
        }
        let stream = self.stream.as_mut().expect("connected above");
        let out = socket_exchange(
            stream,
            request,
            start,
            deadline,
            |s, d| s.set_write_timeout(Some(d)),
            |s, d| s.set_read_timeout(Some(d)),
        );
        if out.is_err() {
            self.stream = None;
        }
        out
    }
}

/// Scrapes a shard over a Unix-domain socket. Same lifecycle as
/// [`TcpTransport`].
#[derive(Debug)]
pub struct UnixTransport {
    path: PathBuf,
    stream: Option<UnixStream>,
}

impl UnixTransport {
    /// A transport that will (re)connect to the socket at `path`.
    pub fn new(path: impl Into<PathBuf>) -> UnixTransport {
        UnixTransport {
            path: path.into(),
            stream: None,
        }
    }
}

impl ShardTransport for UnixTransport {
    fn exchange(&mut self, request: &[u8], deadline: Duration) -> Result<Vec<u8>, ShimError> {
        let start = Instant::now();
        if self.stream.is_none() {
            self.stream = Some(UnixStream::connect(&self.path).map_err(io_error)?);
        }
        let stream = self.stream.as_mut().expect("connected above");
        let out = socket_exchange(
            stream,
            request,
            start,
            deadline,
            |s, d| s.set_write_timeout(Some(d)),
            |s, d| s.set_read_timeout(Some(d)),
        );
        if out.is_err() {
            self.stream = None;
        }
        out
    }
}

/// The shared framed-exchange body of the socket transports: frame and
/// send the request, then read the length-bounded framed response, each
/// step against the *remaining* deadline.
fn socket_exchange<C: Read + Write>(
    stream: &mut C,
    request: &[u8],
    start: Instant,
    deadline: Duration,
    set_write: impl Fn(&C, Duration) -> std::io::Result<()>,
    set_read: impl Fn(&C, Duration) -> std::io::Result<()>,
) -> Result<Vec<u8>, ShimError> {
    let remaining = |start: Instant| -> Result<Duration, ShimError> {
        let left = deadline.saturating_sub(start.elapsed());
        if left.is_zero() {
            Err(ShimError::ScrapeTimeout)
        } else {
            Ok(left)
        }
    };
    let mut framed = Vec::with_capacity(request.len() + wire::FRAME_PREFIX_LEN);
    wire::encode_frame(request, &mut framed)?;
    set_write(stream, remaining(start)?).map_err(io_error)?;
    stream.write_all(&framed).map_err(io_error)?;
    let mut prefix = [0u8; wire::FRAME_PREFIX_LEN];
    set_read(stream, remaining(start)?).map_err(io_error)?;
    stream.read_exact(&mut prefix).map_err(io_error)?;
    // Bound checked before the response buffer is allocated.
    let len = wire::frame_len(prefix)?;
    let mut payload = vec![0u8; len];
    set_read(stream, remaining(start)?).map_err(io_error)?;
    stream.read_exact(&mut payload).map_err(io_error)?;
    Ok(payload)
}

/// Maps socket errors into the scrape error taxonomy: timeouts are
/// [`ShimError::ScrapeTimeout`] (soft evidence — retry), everything else
/// is [`ShimError::LinkDown`] (reconnect next round).
fn io_error(e: std::io::Error) -> ShimError {
    match e.kind() {
        ErrorKind::WouldBlock | ErrorKind::TimedOut => ShimError::ScrapeTimeout,
        ErrorKind::ConnectionRefused => ShimError::LinkDown {
            what: "connection refused",
        },
        ErrorKind::ConnectionReset | ErrorKind::BrokenPipe | ErrorKind::ConnectionAborted => {
            ShimError::LinkDown {
                what: "connection reset",
            }
        }
        ErrorKind::UnexpectedEof => ShimError::LinkDown {
            what: "peer closed mid-frame",
        },
        _ => ShimError::LinkDown {
            what: "socket i/o failed",
        },
    }
}

/// A fault-injecting in-process transport: drives a [`ScrapeResponder`]
/// directly, with every exchange's fate decided by a seeded
/// [`LinkState`]. Latency is virtual (drawn and compared against the
/// deadline, never slept), so 100+ shard lossy fleets simulate in
/// milliseconds — and deterministically, which real sockets can never
/// promise.
pub struct SimTransport<S> {
    responder: Arc<ScrapeResponder<S>>,
    link: LinkState,
}

impl<S: SnapshotSource> SimTransport<S> {
    /// Wraps `responder` behind the fault model `link`.
    pub fn new(responder: Arc<ScrapeResponder<S>>, link: LinkState) -> SimTransport<S> {
        SimTransport { responder, link }
    }

    /// The link's fault state (exchange counts, partition phase).
    pub fn link(&self) -> &LinkState {
        &self.link
    }
}

impl<S: SnapshotSource + Send + Sync> ShardTransport for SimTransport<S> {
    fn exchange(&mut self, request: &[u8], deadline: Duration) -> Result<Vec<u8>, ShimError> {
        let deadline_us = u64::try_from(deadline.as_micros()).unwrap_or(u64::MAX);
        match self.link.exchange(deadline_us) {
            // A drop and an over-deadline delay are indistinguishable to
            // the caller: the deadline expires.
            LinkFate::Dropped | LinkFate::TimedOut { .. } => Err(ShimError::ScrapeTimeout),
            LinkFate::Partitioned => Err(ShimError::LinkDown {
                what: "link partitioned",
            }),
            LinkFate::Delivered { corrupt, .. } => {
                let mut out = Vec::new();
                self.responder.respond_frame(request, &mut out)?;
                if let Some((word, mask)) = corrupt {
                    if !out.is_empty() {
                        let at = usize::try_from(word % out.len() as u64).expect("index < len");
                        out[at] ^= mask;
                    }
                }
                Ok(out)
            }
        }
    }
}

/// Tuning for [`FleetScraper`].
#[derive(Debug, Clone)]
pub struct ScrapeConfig {
    /// Per-request deadline (each retry gets a fresh one).
    pub deadline: Duration,
    /// Extra attempts after a failed exchange within one round.
    pub retries: u32,
    /// Backoff ceiling: a persistently failing endpoint is still probed
    /// at least once every `backoff_cap_rounds + 1` rounds, so Dead
    /// shards can recover.
    pub backoff_cap_rounds: u32,
    /// Seed for backoff jitter (de-synchronizes retry storms).
    pub jitter_seed: u64,
    /// Endpoint-polling threads per round.
    pub concurrency: usize,
    /// The staleness state machine thresholds and inflation constants.
    pub health: HealthPolicy,
}

impl Default for ScrapeConfig {
    fn default() -> ScrapeConfig {
        ScrapeConfig {
            deadline: Duration::from_millis(250),
            retries: 2,
            backoff_cap_rounds: 8,
            jitter_seed: 0x5ca1_ab1e,
            concurrency: 8,
            health: HealthPolicy::default(),
        }
    }
}

/// Rounds to skip after `consecutive_fails` failed rounds: exponential
/// (`0, 1..2, 3..5, 7..10, …` with seeded jitter), capped at `cap` so a
/// down endpoint keeps being probed. Pure in `(fails, cap, *rng)`.
pub fn backoff_rounds(consecutive_fails: u32, cap: u32, rng: &mut u64) -> u32 {
    if consecutive_fails == 0 {
        return 0;
    }
    let base = 1u32 << (consecutive_fails - 1).min(16);
    let base = base.min(cap.max(1));
    let jitter_span = u64::from(base / 2);
    let jitter = if jitter_span > 0 {
        (splitmix64(rng) % (jitter_span + 1)) as u32
    } else {
        0
    };
    (base - 1 + jitter).min(cap)
}

struct Endpoint {
    shard: ShardId,
    label: ShardLabel,
    transport: Box<dyn ShardTransport>,
    health: ShardHealth,
    /// Stamp of the cached snapshot (what delta requests advertise).
    last: Option<(u32, u64)>,
    /// The cached contribution: status + posteriors of the last full
    /// snapshot received.
    cache: Option<(ShardStatus, Vec<Gaussian>)>,
    /// Rounds left to skip (backoff cooldown).
    cooldown: u32,
    /// Consecutive failed rounds, driving the backoff exponent.
    fails: u32,
    /// Per-endpoint jitter stream.
    rng: u64,
    /// Span ring for this endpoint's scrape exchanges. Endpoints are
    /// polled by exactly one worker per round (chunks are disjoint), so
    /// a per-endpoint recorder is race-free.
    spans: SpanRecorder,
    /// Last *derived* health state, for transition telemetry.
    state: HealthState,
}

/// What one [`FleetScraper::poll_round`] did — the observability and
/// benchmarking surface of the scrape plane.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RoundReport {
    /// 1-based round index.
    pub round: u64,
    /// Whether a new fused snapshot was published this round.
    pub published: bool,
    /// Endpoints whose cached posterior entered fusion.
    pub contributors: usize,
    /// Endpoints currently Dead (excluded from fusion).
    pub dead: usize,
    /// Endpoints actually polled this round.
    pub attempted: usize,
    /// Endpoints skipped in backoff cooldown.
    pub skipped: usize,
    /// Request bytes sent (per attempt, unframed payload).
    pub bytes_sent: u64,
    /// Response bytes received (unframed payload).
    pub bytes_received: u64,
    /// Full snapshot responses decoded.
    pub full_snapshots: usize,
    /// `Unchanged` acks received.
    pub unchanged: usize,
    /// Endpoints whose round failed after all retries.
    pub failures: usize,
}

#[derive(Debug, Clone, Copy, Default)]
struct Tally {
    attempted: usize,
    skipped: usize,
    bytes_sent: u64,
    bytes_received: u64,
    full_snapshots: usize,
    unchanged: usize,
    failures: usize,
}

/// Cumulative scrape-plane totals since the scraper was built — the sums
/// of every [`RoundReport`] so far, read from the telemetry registry
/// (the registry is the one source of truth; this struct is the typed
/// accessor over it).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScrapeTotals {
    /// Rounds run.
    pub rounds: u64,
    /// Rounds that published a fused snapshot.
    pub published: u64,
    /// Endpoint polls attempted.
    pub attempted: u64,
    /// Endpoint polls skipped in backoff cooldown.
    pub skipped: u64,
    /// Request bytes sent (unframed payloads, retries included).
    pub bytes_sent: u64,
    /// Response bytes received (unframed payloads).
    pub bytes_received: u64,
    /// Full snapshot responses decoded.
    pub full_snapshots: u64,
    /// `Unchanged` acks received.
    pub unchanged: u64,
    /// Endpoint rounds that failed after all retries.
    pub failures: u64,
}

/// Pre-registered scrape-plane metric handles: creation is cold-path,
/// recording is one relaxed atomic op per tally field per round.
/// Cloning shares the handles (they are `Arc`s onto the same registry
/// slots), which is how a scraper-backed [`FleetSession`] reads live
/// totals without reaching into the scraper.
///
/// [`FleetSession`]: crate::FleetSession
#[derive(Clone)]
pub(crate) struct ScrapeMetrics {
    rounds: Counter,
    published: Counter,
    attempted: Counter,
    skipped: Counter,
    bytes_sent: Counter,
    bytes_received: Counter,
    full_snapshots: Counter,
    unchanged: Counter,
    failures: Counter,
    /// Total payload bytes moved per round (sent + received).
    round_bytes: Histogram,
    /// `health.transitions{state}` counters, indexed like
    /// [`state_idx`]: healthy, degraded, stale, dead.
    transitions: [Counter; 4],
}

pub(crate) fn state_idx(state: HealthState) -> usize {
    match state {
        HealthState::Healthy => 0,
        HealthState::Degraded => 1,
        HealthState::Stale => 2,
        HealthState::Dead => 3,
    }
}

impl ScrapeMetrics {
    /// The current cumulative totals, read live from the counter handles.
    pub(crate) fn totals(&self) -> ScrapeTotals {
        ScrapeTotals {
            rounds: self.rounds.get(),
            published: self.published.get(),
            attempted: self.attempted.get(),
            skipped: self.skipped.get(),
            bytes_sent: self.bytes_sent.get(),
            bytes_received: self.bytes_received.get(),
            full_snapshots: self.full_snapshots.get(),
            unchanged: self.unchanged.get(),
            failures: self.failures.get(),
        }
    }

    fn new(tele: &Telemetry) -> ScrapeMetrics {
        let r = tele.registry();
        ScrapeMetrics {
            rounds: r.counter("scrape.rounds"),
            published: r.counter("scrape.rounds_published"),
            attempted: r.counter("scrape.attempted"),
            skipped: r.counter("scrape.skipped"),
            bytes_sent: r.counter("scrape.bytes_sent"),
            bytes_received: r.counter("scrape.bytes_received"),
            full_snapshots: r.counter("scrape.full_snapshots"),
            unchanged: r.counter("scrape.unchanged"),
            failures: r.counter("scrape.failures"),
            round_bytes: r.histogram("scrape.round_bytes"),
            transitions: [
                r.counter(&labeled("health.transitions", "state", "healthy")),
                r.counter(&labeled("health.transitions", "state", "degraded")),
                r.counter(&labeled("health.transitions", "state", "stale")),
                r.counter(&labeled("health.transitions", "state", "dead")),
            ],
        }
    }
}

/// The aggregator-side scrape client: owns N shard endpoints, polls them
/// concurrently once per [`poll_round`](FleetScraper::poll_round), runs
/// the health state machine, and publishes health-aware fused
/// [`FleetSnapshot`]s through a lock-free cell.
///
/// The scraper is *caller-pumped*: each `poll_round` is one synchronous
/// pass, so tests and benches drive it at virtual speed while a
/// production loop calls it on a timer. Backoff is therefore measured in
/// rounds, not wall time.
pub struct FleetScraper {
    config: ScrapeConfig,
    endpoints: Vec<Endpoint>,
    agg: Aggregator,
    writer: bayesperf_core::SnapshotWriter<FleetSnapshot>,
    reader: SnapshotReader<FleetSnapshot>,
    generation: u64,
    round: u64,
    tele: Telemetry,
    metrics: ScrapeMetrics,
    /// Last merged shard metric dump from [`poll_telemetry`], shared with
    /// scraper-backed [`FleetSession`](crate::FleetSession)s.
    ///
    /// [`poll_telemetry`]: FleetScraper::poll_telemetry
    scraped: Arc<Mutex<Vec<MetricSnapshot>>>,
    /// Fuse-stage span ring (poll_round is caller-pumped, so this is
    /// single-threaded by construction).
    fuse_spans: SpanRecorder,
}

impl FleetScraper {
    /// A scraper fusing a catalog of `n_events` events under `config`.
    pub fn new(n_events: usize, config: ScrapeConfig) -> FleetScraper {
        let (writer, reader) = snapshot_cell();
        let tele = Telemetry::new();
        let metrics = ScrapeMetrics::new(&tele);
        let fuse_spans = tele.spans().recorder();
        FleetScraper {
            config,
            endpoints: Vec::new(),
            agg: Aggregator::new(n_events),
            writer,
            reader,
            generation: 0,
            round: 0,
            tele,
            metrics,
            scraped: Arc::new(Mutex::new(Vec::new())),
            fuse_spans,
        }
    }

    /// The scraper's telemetry plane: the `scrape.*` / `health.*` metric
    /// namespace, the scrape/fuse span rings, and the flight recorder
    /// that logs health transitions.
    pub fn telemetry(&self) -> &Telemetry {
        &self.tele
    }

    /// Cumulative totals of every round so far (the running sums of the
    /// per-round [`RoundReport`]s, served from the telemetry registry).
    pub fn totals(&self) -> ScrapeTotals {
        self.metrics.totals()
    }

    /// Pulls every endpoint's metrics-registry dump (one wire-v3
    /// telemetry exchange per endpoint; endpoints that fail or predate
    /// the telemetry kind are skipped), caches the merged shard dump for
    /// scraper-backed sessions, and returns it merged with the scraper's
    /// own registry — one fleet-wide metric dump. Cold path: an operator
    /// surface, not part of the scrape rounds.
    pub fn poll_telemetry(&mut self) -> Vec<MetricSnapshot> {
        let mut request = Vec::new();
        wire::encode_telemetry_request(&mut request);
        let mut shards: Vec<MetricSnapshot> = Vec::new();
        for ep in &mut self.endpoints {
            let Ok(response) = ep.transport.exchange(&request, self.config.deadline) else {
                continue;
            };
            let Ok((metrics, _)) = wire::decode_telemetry(&response) else {
                continue;
            };
            merge_metrics(&mut shards, &metrics);
        }
        *self.scraped.lock().unwrap_or_else(|e| e.into_inner()) = shards.clone();
        let mut fleet = self.tele.registry().snapshot();
        merge_metrics(&mut fleet, &shards);
        fleet
    }

    /// Opens a fleet-scoped read session over this scraper's published
    /// fused snapshots: the same [`FleetSession`] read surface an
    /// in-process [`Fleet`] serves (`read` / `read_group` /
    /// `read_derived` / `snapshot`), backed by the networked scrape
    /// plane. The session also reads the scraper's live
    /// [`ScrapeTotals`] and the fleet-wide metric dump cached by
    /// [`poll_telemetry`](FleetScraper::poll_telemetry). Update
    /// subscriptions are not available through a scraper-backed session
    /// (poll [`FleetSession::snapshot`] instead).
    ///
    /// [`Fleet`]: crate::Fleet
    /// [`FleetSession`]: crate::FleetSession
    /// [`FleetSession::snapshot`]: crate::FleetSession::snapshot
    pub fn session(&self, catalog: &bayesperf_events::Catalog) -> crate::FleetSession {
        crate::fleet::scraper_session(
            catalog,
            self.reader.clone(),
            self.tele.clone(),
            self.metrics.clone(),
            Arc::clone(&self.scraped),
        )
    }

    /// Registers a shard endpoint. The scraper knows the topology — a
    /// response claiming a different shard id is a decode failure, not a
    /// membership change.
    pub fn add_endpoint(
        &mut self,
        shard: ShardId,
        label: ShardLabel,
        transport: Box<dyn ShardTransport>,
    ) {
        let mut rng = self.config.jitter_seed ^ u64::from(shard.raw()).wrapping_mul(0x9e37_79b9);
        splitmix64(&mut rng);
        self.endpoints.push(Endpoint {
            shard,
            label,
            transport,
            health: ShardHealth::default(),
            last: None,
            cache: None,
            cooldown: 0,
            fails: 0,
            rng,
            spans: self.tele.spans().recorder(),
            state: HealthState::Healthy,
        });
    }

    /// Removes a shard endpoint (its cached contribution leaves fusion
    /// at the next round).
    pub fn remove_endpoint(&mut self, shard: ShardId) -> Result<(), ShimError> {
        match self.endpoints.iter().position(|e| e.shard == shard) {
            Some(i) => {
                self.endpoints.remove(i);
                Ok(())
            }
            None => Err(ShimError::UnknownShard { shard: shard.raw() }),
        }
    }

    /// Registered endpoints.
    pub fn endpoints(&self) -> usize {
        self.endpoints.len()
    }

    /// A wait-free reader of the published fused snapshots (cloneable,
    /// usable from any thread).
    pub fn reader(&self) -> SnapshotReader<FleetSnapshot> {
        self.reader.clone()
    }

    /// Runs one scrape round: poll every endpoint not in cooldown
    /// (concurrently, `config.concurrency` threads), update per-shard
    /// health, fuse the non-Dead cached contributions with staleness
    /// inflation, and publish the fused snapshot if at least one shard
    /// contributed. When nothing contributes (all Dead, or nothing
    /// scraped yet) the previous published snapshot stays in place —
    /// readers never see the fleet posterior disappear.
    pub fn poll_round(&mut self) -> RoundReport {
        self.round += 1;
        let tally = self.poll_endpoints();
        self.metrics.rounds.incr();
        self.metrics.attempted.add(tally.attempted as u64);
        self.metrics.skipped.add(tally.skipped as u64);
        self.metrics.bytes_sent.add(tally.bytes_sent);
        self.metrics.bytes_received.add(tally.bytes_received);
        self.metrics.full_snapshots.add(tally.full_snapshots as u64);
        self.metrics.unchanged.add(tally.unchanged as u64);
        self.metrics.failures.add(tally.failures as u64);
        self.metrics
            .round_bytes
            .record(tally.bytes_sent + tally.bytes_received);
        // Sequential fusion pass over the per-endpoint state.
        let fuse_start = self.fuse_spans.now_ns();
        self.agg.begin();
        let mut dead = 0;
        let mut top_window = 0u32;
        for ep in &mut self.endpoints {
            let view = ShardHealthView::observe(ep.shard, &ep.health, &self.config.health);
            if view.state != ep.state {
                self.metrics.transitions[state_idx(view.state)].incr();
                self.tele.flight().record(FlightEvent::HealthTransition {
                    shard: ep.shard.raw(),
                    from: ep.state.name(),
                    to: view.state.name(),
                });
                ep.state = view.state;
            }
            if !view.state.contributes() {
                dead += 1;
            }
            match &ep.cache {
                Some((status, posteriors)) if view.state.contributes() => {
                    top_window = top_window.max(status.window);
                    // Catalog mismatch is caught at decode time; a cached
                    // entry is always catalog-sized.
                    self.agg
                        .absorb_shard(status.clone(), view, posteriors)
                        .expect("cached contribution is catalog-sized");
                }
                _ => self.agg.note_health(view),
            }
        }
        let contributors = self.agg.absorbed();
        let published = if contributors > 0 {
            self.generation += 1;
            let snap = self
                .agg
                .fuse(self.generation)
                .expect("at least one contributor absorbed");
            self.writer.publish(snap);
            self.metrics.published.incr();
            // The fuse span is tagged with the freshest window that
            // entered fusion, closing that window's end-to-end trace.
            self.fuse_spans
                .record_since(Stage::Fuse, top_window, fuse_start);
            true
        } else {
            false
        };
        RoundReport {
            round: self.round,
            published,
            contributors,
            dead,
            attempted: tally.attempted,
            skipped: tally.skipped,
            bytes_sent: tally.bytes_sent,
            bytes_received: tally.bytes_received,
            full_snapshots: tally.full_snapshots,
            unchanged: tally.unchanged,
            failures: tally.failures,
        }
    }

    /// The concurrent polling phase: endpoints are split into contiguous
    /// chunks, one scoped thread per chunk; all state touched is
    /// per-endpoint, so threads never contend.
    fn poll_endpoints(&mut self) -> Tally {
        let config = self.config.clone();
        let n = self.endpoints.len();
        if n == 0 {
            return Tally::default();
        }
        let chunk = n.div_ceil(config.concurrency.max(1)).max(1);
        let tallies: Vec<Tally> = thread::scope(|scope| {
            let handles: Vec<_> = self
                .endpoints
                .chunks_mut(chunk)
                .map(|eps| {
                    let config = &config;
                    scope.spawn(move || {
                        let mut tally = Tally::default();
                        for ep in eps {
                            poll_endpoint(ep, config, &mut tally);
                        }
                        tally
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("scrape worker must not panic"))
                .collect()
        });
        let mut total = Tally::default();
        for t in tallies {
            total.attempted += t.attempted;
            total.skipped += t.skipped;
            total.bytes_sent += t.bytes_sent;
            total.bytes_received += t.bytes_received;
            total.full_snapshots += t.full_snapshots;
            total.unchanged += t.unchanged;
            total.failures += t.failures;
        }
        total
    }
}

/// One endpoint's round: honor cooldown, otherwise exchange with bounded
/// retries, classify the outcome into health, and set the next cooldown.
fn poll_endpoint(ep: &mut Endpoint, config: &ScrapeConfig, tally: &mut Tally) {
    if ep.cooldown > 0 {
        ep.cooldown -= 1;
        ep.health.on_skipped();
        tally.skipped += 1;
        return;
    }
    tally.attempted += 1;
    let (last_window, last_chunk) = ep.last.unwrap_or((0, 0));
    let req = wire::ScrapeRequest {
        last_window,
        last_chunk,
    };
    let mut request = Vec::new();
    wire::encode_request(&req, &mut request);
    let scrape_start = ep.spans.now_ns();
    let mut scraped_window = None;
    let mut last_err = ShimError::ScrapeTimeout;
    let mut succeeded = false;
    for _ in 0..=config.retries {
        tally.bytes_sent += request.len() as u64;
        let response = match ep.transport.exchange(&request, config.deadline) {
            Ok(r) => r,
            Err(e) => {
                last_err = e;
                continue;
            }
        };
        tally.bytes_received += response.len() as u64;
        match wire::decode_response(&response) {
            Ok((wire::ScrapeResponse::Unchanged { window, chunk }, _)) => {
                if (window, chunk) == (0, 0) && ep.last.is_some() {
                    // The shard lost its snapshot (restart): our cache no
                    // longer reflects anything it would serve.
                    ep.last = None;
                    ep.cache = None;
                }
                scraped_window = Some(window);
                tally.unchanged += 1;
                succeeded = true;
            }
            Ok((wire::ScrapeResponse::Snapshot(snap), _)) => {
                if snap.shard != ep.shard {
                    last_err = ShimError::WireMalformed {
                        what: "scrape response from a different shard",
                    };
                    continue;
                }
                ep.last = Some((snap.window, snap.chunk));
                scraped_window = Some(snap.window);
                let mut status = snap.status();
                // The registered topology label is authoritative; a
                // scraped shard cannot rename itself on the wire.
                status.label = ep.label.clone();
                ep.cache = Some((status, snap.posteriors));
                tally.full_snapshots += 1;
                succeeded = true;
            }
            Err(e) => {
                last_err = e;
                continue;
            }
        }
        break;
    }
    if let Some(window) = scraped_window {
        // Tagged with the window the exchange actually carried, so a
        // window's trace extends across the byte boundary.
        ep.spans.record_since(Stage::Scrape, window, scrape_start);
    }
    if succeeded {
        ep.health.on_success();
        ep.fails = 0;
        ep.cooldown = 0;
    } else {
        ep.health.on_failure(FailureKind::from_error(&last_err));
        tally.failures += 1;
        ep.fails = ep.fails.saturating_add(1);
        ep.cooldown = backoff_rounds(ep.fails, config.backoff_cap_rounds, &mut ep.rng);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bayesperf_inference::EpRunStats;
    use bayesperf_simcpu::LinkProfile;
    use std::sync::atomic::AtomicU64;

    /// A snapshot source whose stamp/posteriors are driven by a counter:
    /// bump the counter, the "shard" has a new snapshot.
    struct SynthSource {
        shard: u32,
        version: AtomicU64,
        events: usize,
    }

    impl SynthSource {
        fn new(shard: u32, events: usize) -> SynthSource {
            SynthSource {
                shard,
                version: AtomicU64::new(1),
                events,
            }
        }
        fn bump(&self) {
            self.version.fetch_add(1, Ordering::Relaxed);
        }
    }

    impl SnapshotSource for SynthSource {
        fn source_stamp(&self) -> Result<(u32, u64), ShimError> {
            let v = self.version.load(Ordering::Relaxed);
            Ok((v as u32 * 6, v))
        }
        fn source_view(&self) -> Result<SnapshotView, ShimError> {
            let v = self.version.load(Ordering::Relaxed);
            Ok(SnapshotView {
                window: v as u32 * 6,
                chunk: v,
                stats: EpRunStats::default(),
                late_by_source: Vec::new(),
                posteriors: (0..self.events)
                    .map(|e| {
                        Gaussian::new(
                            10.0 + self.shard as f64 + e as f64 + v as f64 * 0.1,
                            1.0 + e as f64 * 0.5,
                        )
                    })
                    .collect(),
            })
        }
    }

    fn responder(shard: u32, events: usize) -> Arc<ScrapeResponder<SynthSource>> {
        Arc::new(ScrapeResponder::new(
            ShardId::from_raw(shard),
            ShardLabel::new(format!("m{shard}"), 0),
            SynthSource::new(shard, events),
        ))
    }

    #[test]
    fn delta_scrapes_ack_unchanged_until_the_source_moves() {
        let r = responder(0, 2);
        let mut t = SimTransport::new(Arc::clone(&r), LinkState::new(LinkProfile::clean(1)));
        let mut req = Vec::new();
        wire::encode_request(&wire::ScrapeRequest::default(), &mut req);
        let resp = t.exchange(&req, Duration::from_millis(10)).unwrap();
        let snap = match wire::decode_response(&resp).unwrap().0 {
            wire::ScrapeResponse::Snapshot(s) => s,
            other => panic!("first scrape must be full: {other:?}"),
        };
        // Second scrape with the fresh stamp: tiny Unchanged ack.
        let mut req2 = Vec::new();
        wire::encode_request(
            &wire::ScrapeRequest {
                last_window: snap.window,
                last_chunk: snap.chunk,
            },
            &mut req2,
        );
        let resp2 = t.exchange(&req2, Duration::from_millis(10)).unwrap();
        assert!(resp2.len() < resp.len() / 2, "ack must be tiny");
        assert!(matches!(
            wire::decode_response(&resp2).unwrap().0,
            wire::ScrapeResponse::Unchanged { .. }
        ));
        // Source moves: full snapshot again.
        r.source.bump();
        let resp3 = t.exchange(&req2, Duration::from_millis(10)).unwrap();
        assert!(matches!(
            wire::decode_response(&resp3).unwrap().0,
            wire::ScrapeResponse::Snapshot(_)
        ));
    }

    #[test]
    fn scraper_fuses_clean_fleet_and_acks_keep_it_healthy() {
        let mut scraper = FleetScraper::new(2, ScrapeConfig::default());
        for shard in 0..4u32 {
            let r = responder(shard, 2);
            scraper.add_endpoint(
                ShardId::from_raw(shard),
                ShardLabel::new(format!("m{shard}"), 0),
                Box::new(SimTransport::new(
                    r,
                    LinkState::new(LinkProfile::clean(shard as u64)),
                )),
            );
        }
        let reader = scraper.reader();
        let first = scraper.poll_round();
        assert!(first.published);
        assert_eq!(first.contributors, 4);
        assert_eq!(first.full_snapshots, 4);
        let snap = reader.read().expect("published");
        assert_eq!(snap.shards.len(), 4);
        assert_eq!(snap.health.len(), 4);
        assert!(snap
            .health
            .iter()
            .all(|h| h.state == crate::HealthState::Healthy));
        assert!(snap.fused.iter().all(|g| g.var.is_finite() && g.var > 0.0));
        drop(snap);
        // Steady state: every endpoint acks Unchanged, stays Healthy,
        // and the round's bytes collapse to acks.
        let second = scraper.poll_round();
        assert_eq!(second.unchanged, 4);
        assert_eq!(second.full_snapshots, 0);
        assert!(second.published);
        assert!(second.bytes_received < first.bytes_received / 2);
    }

    #[test]
    fn backoff_is_capped_jittered_and_resets() {
        let mut rng = 7u64;
        assert_eq!(backoff_rounds(0, 8, &mut rng), 0);
        assert_eq!(
            backoff_rounds(1, 8, &mut rng),
            0,
            "first failure retries next round"
        );
        for fails in 2..40 {
            let c = backoff_rounds(fails, 8, &mut rng);
            assert!(c <= 8, "cap respected: {c}");
            assert!(c >= 1, "repeated failure must cool down: {c}");
        }
        // Jitter varies across draws for the same failure count.
        let draws: Vec<u32> = (0..32).map(|_| backoff_rounds(4, 8, &mut rng)).collect();
        assert!(
            draws.iter().any(|&c| c != draws[0]),
            "jitter must vary: {draws:?}"
        );
        // Huge failure counts don't overflow the shift.
        assert!(backoff_rounds(u32::MAX, 8, &mut rng) <= 8);
    }

    #[test]
    fn wrong_shard_id_in_response_is_a_decode_failure() {
        let mut scraper = FleetScraper::new(2, ScrapeConfig::default());
        // Endpoint registered as shard 5, responder claims shard 0.
        let r = responder(0, 2);
        scraper.add_endpoint(
            ShardId::from_raw(5),
            ShardLabel::new("m5", 0),
            Box::new(SimTransport::new(r, LinkState::new(LinkProfile::clean(3)))),
        );
        let report = scraper.poll_round();
        assert_eq!(report.failures, 1);
        assert!(!report.published);
        let snap = scraper.reader();
        assert!(snap.read().is_none(), "nothing fusable was scraped");
    }
}
