//! The versioned binary snapshot wire codec.
//!
//! Shards and aggregators usually live in different processes (or
//! machines): a scraper pulls each shard's latest posterior snapshot over
//! a byte boundary, fuses, and republishes a fleet summary. This module
//! defines that byte layout — hand-rolled, allocation-light, and free of
//! any serde machinery on the hot path:
//!
//! * **Header** — 4-byte magic `"BPWF"`, a format version byte, and a
//!   record-kind byte ([`KIND_SHARD`] / [`KIND_SUMMARY`]). Unknown
//!   versions and kinds are typed errors, so old scrapers fail loud, not
//!   garbled.
//! * **Integers** (ids, windows, chunk counters, lengths) — LEB128
//!   varints: small values (the common case) cost one byte.
//! * **Moments** (mean, variance) — fixed-width 64-bit IEEE-754 bits,
//!   little-endian. A quantized fixed-point layout was considered and
//!   rejected: fusion weights are *reciprocals of variances*, so
//!   quantization error is amplified precision-side, and the fleet's
//!   degenerate-case guarantee (one shard ⇒ bit-identical posteriors)
//!   requires the codec to be lossless. Encode→decode is an exact
//!   identity for every finite moment.
//!
//! Encoders append to a caller-owned `Vec<u8>` (reuse it across scrape
//! passes); decoders validate everything — truncation, versions, lengths,
//! UTF-8, non-finite means, non-positive variances — and return
//! [`ShimError`]s. **Decoding never panics**, whatever the bytes.
//!
//! ```text
//! shard record:    BPWF v k | shard window chunk | label_len label socket
//!                  | n_src late×n_src | n | (mean var)×n
//! summary record:  BPWF v k | generation | n_shards
//!                  | (shard window chunk label socket n_src late×n_src)×n
//!                  | n_events | (mean var)×n_events
//! scrape request:  BPWF v k | last_window last_chunk
//! unchanged ack:   BPWF v k | window chunk
//! telemetry req:   BPWF v k
//! telemetry dump:  BPWF v k | n_metrics
//!                  | (name_len name kind payload)×n_metrics
//! ```
//!
//! A telemetry dump (version 3) carries a shard's metrics-registry
//! snapshot: per metric its namespaced name, a kind byte (counter /
//! gauge / histogram), and a kind-specific payload. Histograms travel
//! sparsely as `(bucket_index, count)` pairs plus the value sum, so an
//! idle shard's dump stays tiny.
//!
//! The `n_src late×n_src` run is the observation plane's health
//! metadata: per-source dropped-late sample counts, indexed by raw
//! source id. An all-healthy shard encodes it as a single `0` byte —
//! the common case stays one byte, and varints keep the degraded case
//! proportional to how many sources have actually dropped samples.
//!
//! The scrape request/unchanged pair is the **delta protocol**
//! (`fleet::net`): a scraper sends the `(window, chunk)` stamp of the
//! snapshot it already holds; the shard answers with a tiny unchanged ack
//! when nothing moved, or a full shard record when it did — so
//! steady-state scrape bytes scale with *change rate*, not catalog size.
//!
//! For byte streams (sockets), records travel inside length frames:
//! a 4-byte little-endian length prefix followed by that many payload
//! bytes. [`frame_len`] rejects any prefix above [`MAX_FRAME_LEN`]
//! *before* anything is allocated, so a hostile peer cannot make a reader
//! reserve unbounded memory by lying about a length.

use crate::fuse::{FleetSnapshot, ShardStatus};
use crate::topology::{ShardId, ShardLabel};
use bayesperf_core::{ShimError, SnapshotView};
use bayesperf_inference::Gaussian;
use bayesperf_obs::{HistogramSnapshot, MetricSnapshot, MetricValue, HISTOGRAM_BUCKETS};

/// Leading magic of every record.
pub const MAGIC: [u8; 4] = *b"BPWF";
/// Highest (and only) format version this build reads and writes.
/// Version 2 added the per-source late-drop run to shard and summary
/// records; version 3 added the telemetry request/dump record pair.
/// Readers of either older version fail loud on v3 frames rather than
/// mis-parse, and a v3 reader rejects v1/v2 frames the same way — the
/// *bodies* of the pre-existing kinds are byte-identical across v2→v3,
/// only the version byte moved.
pub const VERSION: u8 = 3;
/// Record kind: one shard's posterior snapshot.
pub const KIND_SHARD: u8 = 1;
/// Record kind: a fused fleet summary.
pub const KIND_SUMMARY: u8 = 2;
/// Record kind: a scrape request carrying the client's last-seen stamp.
pub const KIND_SCRAPE_REQ: u8 = 3;
/// Record kind: "nothing newer than your stamp" delta ack.
pub const KIND_UNCHANGED: u8 = 4;
/// Record kind: a telemetry pull request (no body).
pub const KIND_TELEMETRY_REQ: u8 = 5;
/// Record kind: a metrics-registry dump (new in version 3).
pub const KIND_TELEMETRY: u8 = 6;

/// Decoded length guard: no sane catalog or fleet has a million entries,
/// so a length above this is a corrupt buffer, not a big fleet — reject
/// it before attempting the allocation.
const MAX_LEN: u64 = 1 << 20;

/// Hard upper bound on one length-framed message's payload (32 MiB).
///
/// Chosen so that any record the codec itself can produce fits (a
/// `MAX_LEN`-entry posterior vector is ~16 MiB of moments), while a
/// corrupt or hostile length prefix is rejected by [`frame_len`] *before*
/// a reader allocates its receive buffer. Both sides of the scrape plane
/// enforce it: writers refuse to emit oversized frames, readers refuse to
/// ingest them.
pub const MAX_FRAME_LEN: usize = 1 << 25;

/// Bytes of the length prefix in front of every framed message.
pub const FRAME_PREFIX_LEN: usize = 4;

/// One shard's scraped posterior state, as carried on the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardSnapshot {
    /// Which shard this snapshot came from.
    pub shard: ShardId,
    /// Its topology label.
    pub label: ShardLabel,
    /// Most recent corrected window.
    pub window: u32,
    /// 1-based inference-run counter.
    pub chunk: u64,
    /// Per-source dropped-late sample counts, indexed by raw source id
    /// (empty when every source has always landed in time).
    pub late_by_source: Vec<u64>,
    /// Catalog-indexed posteriors.
    pub posteriors: Vec<Gaussian>,
}

impl ShardSnapshot {
    /// Builds the wire form of a shard's in-process
    /// [`SnapshotView`] (see
    /// [`Session::snapshot`](bayesperf_core::Session::snapshot)).
    pub fn from_view(shard: ShardId, label: ShardLabel, view: &SnapshotView) -> ShardSnapshot {
        ShardSnapshot {
            shard,
            label,
            window: view.window,
            chunk: view.chunk,
            late_by_source: view.late_by_source.clone(),
            posteriors: view.posteriors.clone(),
        }
    }

    /// The [`ShardStatus`] row this snapshot contributes to a fused view.
    pub fn status(&self) -> ShardStatus {
        ShardStatus {
            shard: self.shard,
            label: self.label.clone(),
            window: self.window,
            chunk: self.chunk,
            late_by_source: self.late_by_source.clone(),
        }
    }
}

/// A fused fleet summary, as carried on the wire (the fused posteriors
/// plus per-shard progress — without the per-shard posterior payloads,
/// which stay scraper-side).
#[derive(Debug, Clone, PartialEq)]
pub struct FleetSummary {
    /// Aggregation pass that produced the summary.
    pub generation: u64,
    /// Contributing shards.
    pub shards: Vec<ShardStatus>,
    /// Catalog-indexed fused posteriors.
    pub fused: Vec<Gaussian>,
}

impl FleetSummary {
    /// The summary view of a fused snapshot.
    pub fn of(snapshot: &FleetSnapshot) -> FleetSummary {
        FleetSummary {
            generation: snapshot.generation,
            shards: snapshot.shards.clone(),
            fused: snapshot.fused.clone(),
        }
    }
}

// ---- primitive layer -------------------------------------------------

fn put_varint(mut v: u64, out: &mut Vec<u8>) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn put_f64(v: f64, out: &mut Vec<u8>) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

/// Cursor over an input buffer; every read is bounds-checked and reports
/// the offset it needed.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    fn byte(&mut self) -> Result<u8, ShimError> {
        let b = *self
            .buf
            .get(self.pos)
            .ok_or(ShimError::WireTruncated { offset: self.pos })?;
        self.pos += 1;
        Ok(b)
    }

    fn varint(&mut self) -> Result<u64, ShimError> {
        let mut v: u64 = 0;
        for shift in (0..64).step_by(7) {
            let b = self.byte()?;
            v |= u64::from(b & 0x7f) << shift;
            if b & 0x80 == 0 {
                // The 10th byte may only carry the top bit of a u64.
                if shift == 63 && b > 1 {
                    return Err(ShimError::WireMalformed {
                        what: "varint overflows 64 bits",
                    });
                }
                return Ok(v);
            }
        }
        Err(ShimError::WireMalformed {
            what: "varint longer than 10 bytes",
        })
    }

    fn len(&mut self) -> Result<usize, ShimError> {
        let n = self.varint()?;
        if n > MAX_LEN {
            return Err(ShimError::WireMalformed {
                what: "length field exceeds sanity bound",
            });
        }
        Ok(n as usize)
    }

    /// A varint that must fit a 32-bit field (shard ids, windows,
    /// sockets): silently truncating would mis-attribute a corrupted
    /// snapshot instead of rejecting it.
    fn varint_u32(&mut self) -> Result<u32, ShimError> {
        u32::try_from(self.varint()?).map_err(|_| ShimError::WireMalformed {
            what: "32-bit field exceeds u32::MAX",
        })
    }

    fn f64(&mut self) -> Result<f64, ShimError> {
        let end = self
            .pos
            .checked_add(8)
            .filter(|&e| e <= self.buf.len())
            .ok_or(ShimError::WireTruncated { offset: self.pos })?;
        let mut raw = [0u8; 8];
        raw.copy_from_slice(&self.buf[self.pos..end]);
        self.pos = end;
        Ok(f64::from_bits(u64::from_le_bytes(raw)))
    }

    fn bytes(&mut self, n: usize) -> Result<&'a [u8], ShimError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or(ShimError::WireTruncated { offset: self.pos })?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    /// Validates magic + version and returns the record kind byte.
    fn header_any(&mut self) -> Result<u8, ShimError> {
        let magic = self.bytes(4)?;
        if magic != MAGIC {
            return Err(ShimError::WireMalformed {
                what: "bad magic (not a BayesPerf wire record)",
            });
        }
        let version = self.byte()?;
        if version != VERSION {
            return Err(ShimError::WireVersion {
                got: version,
                supported: VERSION,
            });
        }
        self.byte()
    }

    fn header(&mut self, kind: u8) -> Result<(), ShimError> {
        if self.header_any()? != kind {
            return Err(ShimError::WireMalformed {
                what: "record kind mismatch",
            });
        }
        Ok(())
    }

    fn gaussian(&mut self) -> Result<Gaussian, ShimError> {
        let mean = self.f64()?;
        let var = self.f64()?;
        if !mean.is_finite() {
            return Err(ShimError::WireMalformed {
                what: "non-finite posterior mean",
            });
        }
        if !var.is_finite() || var <= 0.0 {
            return Err(ShimError::WireMalformed {
                what: "non-positive posterior variance",
            });
        }
        // Validated above, so the distribution constructor cannot panic.
        Ok(Gaussian::new(mean, var))
    }

    fn late(&mut self) -> Result<Vec<u64>, ShimError> {
        let n = self.len()?;
        let mut late = Vec::with_capacity(n);
        for _ in 0..n {
            late.push(self.varint()?);
        }
        Ok(late)
    }

    fn label(&mut self) -> Result<ShardLabel, ShimError> {
        let n = self.len()?;
        let raw = self.bytes(n)?;
        let machine = std::str::from_utf8(raw)
            .map_err(|_| ShimError::WireMalformed {
                what: "machine label is not UTF-8",
            })?
            .to_string();
        let socket = self.varint_u32()?;
        Ok(ShardLabel { machine, socket })
    }
}

fn put_label(label: &ShardLabel, out: &mut Vec<u8>) {
    put_varint(label.machine.len() as u64, out);
    out.extend_from_slice(label.machine.as_bytes());
    put_varint(u64::from(label.socket), out);
}

fn put_late(late_by_source: &[u64], out: &mut Vec<u8>) {
    put_varint(late_by_source.len() as u64, out);
    for &n in late_by_source {
        put_varint(n, out);
    }
}

fn put_header(kind: u8, out: &mut Vec<u8>) {
    out.extend_from_slice(&MAGIC);
    out.push(VERSION);
    out.push(kind);
}

/// Validates a record's magic and version and returns its kind byte
/// without decoding the body — how a server dispatches a request frame
/// onto the right decoder. Wrong versions are the typed
/// [`ShimError::WireVersion`], exactly as the full decoders report them.
pub fn peek_kind(buf: &[u8]) -> Result<u8, ShimError> {
    Reader::new(buf).header_any()
}

// ---- records ---------------------------------------------------------

/// Appends the wire form of a shard snapshot to `out`.
pub fn encode_shard(snapshot: &ShardSnapshot, out: &mut Vec<u8>) {
    put_header(KIND_SHARD, out);
    put_varint(u64::from(snapshot.shard.raw()), out);
    put_varint(u64::from(snapshot.window), out);
    put_varint(snapshot.chunk, out);
    put_label(&snapshot.label, out);
    put_late(&snapshot.late_by_source, out);
    put_varint(snapshot.posteriors.len() as u64, out);
    for g in &snapshot.posteriors {
        put_f64(g.mean, out);
        put_f64(g.var, out);
    }
}

/// Appends a shard record straight from an in-process [`SnapshotView`],
/// skipping the posterior clone a [`ShardSnapshot::from_view`] round trip
/// would pay — the scrape server's per-request encode path.
pub fn encode_shard_view(
    shard: ShardId,
    label: &ShardLabel,
    view: &SnapshotView,
    out: &mut Vec<u8>,
) {
    put_header(KIND_SHARD, out);
    put_varint(u64::from(shard.raw()), out);
    put_varint(u64::from(view.window), out);
    put_varint(view.chunk, out);
    put_label(label, out);
    put_late(&view.late_by_source, out);
    put_varint(view.posteriors.len() as u64, out);
    for g in &view.posteriors {
        put_f64(g.mean, out);
        put_f64(g.var, out);
    }
}

/// Parses a shard record's body (everything after the header).
fn shard_body(r: &mut Reader<'_>) -> Result<ShardSnapshot, ShimError> {
    let shard = ShardId::from_raw(r.varint_u32()?);
    let window = r.varint_u32()?;
    let chunk = r.varint()?;
    let label = r.label()?;
    let late_by_source = r.late()?;
    let n = r.len()?;
    let mut posteriors = Vec::with_capacity(n);
    for _ in 0..n {
        posteriors.push(r.gaussian()?);
    }
    Ok(ShardSnapshot {
        shard,
        label,
        window,
        chunk,
        late_by_source,
        posteriors,
    })
}

/// Decodes one shard record from the front of `buf`, returning the
/// snapshot and the bytes consumed (records may be concatenated).
pub fn decode_shard(buf: &[u8]) -> Result<(ShardSnapshot, usize), ShimError> {
    let mut r = Reader::new(buf);
    r.header(KIND_SHARD)?;
    let snap = shard_body(&mut r)?;
    Ok((snap, r.pos))
}

/// Appends the wire form of a fleet summary to `out`.
pub fn encode_summary(summary: &FleetSummary, out: &mut Vec<u8>) {
    put_header(KIND_SUMMARY, out);
    put_varint(summary.generation, out);
    put_varint(summary.shards.len() as u64, out);
    for s in &summary.shards {
        put_varint(u64::from(s.shard.raw()), out);
        put_varint(u64::from(s.window), out);
        put_varint(s.chunk, out);
        put_label(&s.label, out);
        put_late(&s.late_by_source, out);
    }
    put_varint(summary.fused.len() as u64, out);
    for g in &summary.fused {
        put_f64(g.mean, out);
        put_f64(g.var, out);
    }
}

/// Decodes one fleet-summary record from the front of `buf`, returning
/// the summary and the bytes consumed.
pub fn decode_summary(buf: &[u8]) -> Result<(FleetSummary, usize), ShimError> {
    let mut r = Reader::new(buf);
    r.header(KIND_SUMMARY)?;
    let generation = r.varint()?;
    let n_shards = r.len()?;
    let mut shards = Vec::with_capacity(n_shards);
    for _ in 0..n_shards {
        let shard = ShardId::from_raw(r.varint_u32()?);
        let window = r.varint_u32()?;
        let chunk = r.varint()?;
        let label = r.label()?;
        let late_by_source = r.late()?;
        shards.push(ShardStatus {
            shard,
            label,
            window,
            chunk,
            late_by_source,
        });
    }
    let n_events = r.len()?;
    let mut fused = Vec::with_capacity(n_events);
    for _ in 0..n_events {
        fused.push(r.gaussian()?);
    }
    Ok((
        FleetSummary {
            generation,
            shards,
            fused,
        },
        r.pos,
    ))
}

// ---- the delta scrape protocol ---------------------------------------

/// A scraper's pull request: the `(window, chunk)` stamp of the snapshot
/// it already holds. `last_chunk == 0` means "I have nothing — send a
/// full snapshot" (published chunks are 1-based, so 0 never collides with
/// a real stamp).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ScrapeRequest {
    /// Most recent corrected window the scraper holds.
    pub last_window: u32,
    /// Inference-run counter of the snapshot the scraper holds.
    pub last_chunk: u64,
}

/// Appends the wire form of a scrape request to `out`.
pub fn encode_request(req: &ScrapeRequest, out: &mut Vec<u8>) {
    put_header(KIND_SCRAPE_REQ, out);
    put_varint(u64::from(req.last_window), out);
    put_varint(req.last_chunk, out);
}

/// Decodes one scrape request from the front of `buf`.
pub fn decode_request(buf: &[u8]) -> Result<(ScrapeRequest, usize), ShimError> {
    let mut r = Reader::new(buf);
    r.header(KIND_SCRAPE_REQ)?;
    let last_window = r.varint_u32()?;
    let last_chunk = r.varint()?;
    Ok((
        ScrapeRequest {
            last_window,
            last_chunk,
        },
        r.pos,
    ))
}

/// Appends an unchanged ack (the shard's current stamp) to `out`.
pub fn encode_unchanged(window: u32, chunk: u64, out: &mut Vec<u8>) {
    put_header(KIND_UNCHANGED, out);
    put_varint(u64::from(window), out);
    put_varint(chunk, out);
}

/// What a shard answered a scrape request with.
#[derive(Debug, Clone, PartialEq)]
pub enum ScrapeResponse {
    /// The scraper's snapshot is current (or, with `chunk == 0`, the
    /// shard has not published anything yet). Carries the shard's stamp.
    Unchanged {
        /// The shard's current window (0 when nothing is published).
        window: u32,
        /// The shard's current chunk counter (0 when nothing published).
        chunk: u64,
    },
    /// The shard moved past the scraper's stamp: a full snapshot.
    Snapshot(ShardSnapshot),
}

/// Decodes a scrape response — either record kind — from the front of
/// `buf`, returning it and the bytes consumed.
pub fn decode_response(buf: &[u8]) -> Result<(ScrapeResponse, usize), ShimError> {
    let mut r = Reader::new(buf);
    match r.header_any()? {
        KIND_UNCHANGED => {
            let window = r.varint_u32()?;
            let chunk = r.varint()?;
            Ok((ScrapeResponse::Unchanged { window, chunk }, r.pos))
        }
        KIND_SHARD => {
            let snap = shard_body(&mut r)?;
            Ok((ScrapeResponse::Snapshot(snap), r.pos))
        }
        _ => Err(ShimError::WireMalformed {
            what: "record kind is not a scrape response",
        }),
    }
}

// ---- the telemetry plane (version 3) ---------------------------------

/// Metric kind byte inside a telemetry dump: monotone counter.
const METRIC_COUNTER: u8 = 0;
/// Metric kind byte inside a telemetry dump: last-written gauge.
const METRIC_GAUGE: u8 = 1;
/// Metric kind byte inside a telemetry dump: log-scale histogram.
const METRIC_HISTOGRAM: u8 = 2;

/// Appends a telemetry pull request (header only — the request carries
/// no state; a dump is always a full registry snapshot).
pub fn encode_telemetry_request(out: &mut Vec<u8>) {
    put_header(KIND_TELEMETRY_REQ, out);
}

/// Decodes one telemetry request from the front of `buf`.
pub fn decode_telemetry_request(buf: &[u8]) -> Result<usize, ShimError> {
    let mut r = Reader::new(buf);
    r.header(KIND_TELEMETRY_REQ)?;
    Ok(r.pos)
}

/// Appends the wire form of a metrics-registry dump to `out`.
///
/// Histograms are encoded sparsely — only populated buckets travel, as
/// `(bucket_index, count)` varint pairs — so dump size tracks how much
/// has actually been recorded, not the fixed bucket count.
pub fn encode_telemetry(metrics: &[MetricSnapshot], out: &mut Vec<u8>) {
    put_header(KIND_TELEMETRY, out);
    put_varint(metrics.len() as u64, out);
    for m in metrics {
        put_varint(m.name.len() as u64, out);
        out.extend_from_slice(m.name.as_bytes());
        match &m.value {
            MetricValue::Counter(v) => {
                out.push(METRIC_COUNTER);
                put_varint(*v, out);
            }
            MetricValue::Gauge(v) => {
                out.push(METRIC_GAUGE);
                out.extend_from_slice(&v.to_bits().to_le_bytes());
            }
            MetricValue::Histogram(h) => {
                out.push(METRIC_HISTOGRAM);
                let populated = h.buckets.iter().filter(|&&c| c > 0).count();
                put_varint(populated as u64, out);
                for (idx, &count) in h.buckets.iter().enumerate() {
                    if count > 0 {
                        put_varint(idx as u64, out);
                        put_varint(count, out);
                    }
                }
                put_varint(h.sum, out);
            }
        }
    }
}

/// Decodes one telemetry dump from the front of `buf`, returning the
/// metric snapshots and the bytes consumed.
pub fn decode_telemetry(buf: &[u8]) -> Result<(Vec<MetricSnapshot>, usize), ShimError> {
    let mut r = Reader::new(buf);
    r.header(KIND_TELEMETRY)?;
    let n = r.len()?;
    let mut metrics = Vec::with_capacity(n);
    for _ in 0..n {
        let name_len = r.len()?;
        let name = std::str::from_utf8(r.bytes(name_len)?)
            .map_err(|_| ShimError::WireMalformed {
                what: "metric name is not UTF-8",
            })?
            .to_string();
        let value = match r.byte()? {
            METRIC_COUNTER => MetricValue::Counter(r.varint()?),
            METRIC_GAUGE => MetricValue::Gauge(r.f64()?),
            METRIC_HISTOGRAM => {
                let pairs = r.len()?;
                let mut snap = HistogramSnapshot::default();
                for _ in 0..pairs {
                    let idx = r.varint()? as usize;
                    if idx >= HISTOGRAM_BUCKETS {
                        return Err(ShimError::WireMalformed {
                            what: "histogram bucket index out of range",
                        });
                    }
                    snap.buckets[idx] = r.varint()?;
                }
                snap.sum = r.varint()?;
                MetricValue::Histogram(Box::new(snap))
            }
            _ => {
                return Err(ShimError::WireMalformed {
                    what: "unknown metric kind",
                })
            }
        };
        metrics.push(MetricSnapshot { name, value });
    }
    Ok((metrics, r.pos))
}

// ---- length framing --------------------------------------------------

/// Validates a frame's 4-byte little-endian length prefix and returns the
/// payload length. Any length above [`MAX_FRAME_LEN`] is rejected here —
/// **before** a reader sizes its receive buffer — so a hostile or corrupt
/// prefix can never drive an unbounded allocation.
pub fn frame_len(prefix: [u8; FRAME_PREFIX_LEN]) -> Result<usize, ShimError> {
    let len = u32::from_le_bytes(prefix) as usize;
    if len > MAX_FRAME_LEN {
        return Err(ShimError::WireMalformed {
            what: "frame length exceeds MAX_FRAME_LEN",
        });
    }
    Ok(len)
}

/// Appends `payload` as one length-framed message (prefix + bytes).
/// Refuses payloads above [`MAX_FRAME_LEN`] — the bound is symmetric, so
/// a compliant writer never produces a frame a compliant reader rejects.
pub fn encode_frame(payload: &[u8], out: &mut Vec<u8>) -> Result<(), ShimError> {
    if payload.len() > MAX_FRAME_LEN {
        return Err(ShimError::WireMalformed {
            what: "frame payload exceeds MAX_FRAME_LEN",
        });
    }
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    Ok(())
}

/// Splits one frame off the front of `buf`, returning the payload slice
/// and the total bytes consumed (prefix + payload). Never allocates;
/// never panics.
pub fn decode_frame(buf: &[u8]) -> Result<(&[u8], usize), ShimError> {
    if buf.len() < FRAME_PREFIX_LEN {
        return Err(ShimError::WireTruncated { offset: buf.len() });
    }
    let mut prefix = [0u8; FRAME_PREFIX_LEN];
    prefix.copy_from_slice(&buf[..FRAME_PREFIX_LEN]);
    let len = frame_len(prefix)?;
    let end = FRAME_PREFIX_LEN
        .checked_add(len)
        .filter(|&e| e <= buf.len())
        .ok_or(ShimError::WireTruncated { offset: buf.len() })?;
    Ok((&buf[FRAME_PREFIX_LEN..end], end))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snapshot() -> ShardSnapshot {
        ShardSnapshot {
            shard: ShardId::from_raw(300),
            label: ShardLabel::new("rack1-node07", 1),
            window: 41,
            chunk: 7,
            late_by_source: vec![0, 3],
            posteriors: vec![
                Gaussian::new(123.456, 0.3),
                Gaussian::new(-5.0e9, 1.0e12),
                Gaussian::new(0.0, f64::MIN_POSITIVE),
            ],
        }
    }

    #[test]
    fn shard_roundtrip_is_identity_and_reports_length() {
        let snap = snapshot();
        let mut buf = Vec::new();
        encode_shard(&snap, &mut buf);
        // Concatenate a second record: decode must stop at the boundary.
        let mut double = buf.clone();
        encode_shard(&snap, &mut double);
        let (back, used) = decode_shard(&double).unwrap();
        assert_eq!(back, snap);
        assert_eq!(used, buf.len());
        let (second, used2) = decode_shard(&double[used..]).unwrap();
        assert_eq!(second, snap);
        assert_eq!(used + used2, double.len());
    }

    #[test]
    fn varints_keep_small_records_small() {
        let mut snap = snapshot();
        snap.posteriors.truncate(1);
        let mut buf = Vec::new();
        encode_shard(&snap, &mut buf);
        // header 6 + shard 2 + window 1 + chunk 1 + label (1+12+1)
        // + late (1+2) + n 1 + one gaussian 16 = 44 bytes.
        assert_eq!(buf.len(), 44);
        // An all-healthy observation plane costs exactly one byte.
        snap.late_by_source.clear();
        let mut healthy = Vec::new();
        encode_shard(&snap, &mut healthy);
        assert_eq!(healthy.len(), 42);
    }

    #[test]
    fn summary_roundtrip_is_identity() {
        let snap = snapshot();
        let summary = FleetSummary {
            generation: u64::MAX,
            shards: vec![snap.status()],
            fused: snap.posteriors.clone(),
        };
        let mut buf = Vec::new();
        encode_summary(&summary, &mut buf);
        let (back, used) = decode_summary(&buf).unwrap();
        assert_eq!(back, summary);
        assert_eq!(used, buf.len());
    }

    #[test]
    fn every_truncation_is_a_typed_error() {
        let mut buf = Vec::new();
        encode_shard(&snapshot(), &mut buf);
        for cut in 0..buf.len() {
            match decode_shard(&buf[..cut]) {
                Err(ShimError::WireTruncated { .. }) => {}
                other => panic!("cut at {cut}: expected truncation, got {other:?}"),
            }
        }
    }

    #[test]
    fn bad_magic_version_and_kind_are_rejected() {
        let mut buf = Vec::new();
        encode_shard(&snapshot(), &mut buf);
        let mut bad = buf.clone();
        bad[0] = b'X';
        assert!(matches!(
            decode_shard(&bad),
            Err(ShimError::WireMalformed { .. })
        ));
        let mut bad = buf.clone();
        bad[4] = 9;
        assert_eq!(
            decode_shard(&bad),
            Err(ShimError::WireVersion {
                got: 9,
                supported: VERSION
            })
        );
        // A summary decoder fed a shard record must refuse.
        assert!(matches!(
            decode_summary(&buf),
            Err(ShimError::WireMalformed {
                what: "record kind mismatch"
            })
        ));
    }

    #[test]
    fn invalid_moments_are_rejected_not_panicked() {
        let mut snap = snapshot();
        snap.posteriors = vec![Gaussian::new(1.0, 1.0)];
        let mut buf = Vec::new();
        encode_shard(&snap, &mut buf);
        let var_off = buf.len() - 8;
        // Variance := -1.0.
        buf[var_off..].copy_from_slice(&(-1.0f64).to_bits().to_le_bytes());
        assert!(matches!(
            decode_shard(&buf),
            Err(ShimError::WireMalformed {
                what: "non-positive posterior variance"
            })
        ));
        // Mean := NaN.
        let mean_off = buf.len() - 16;
        buf[mean_off..mean_off + 8].copy_from_slice(&f64::NAN.to_bits().to_le_bytes());
        assert!(matches!(
            decode_shard(&buf),
            Err(ShimError::WireMalformed {
                what: "non-finite posterior mean"
            })
        ));
    }

    #[test]
    fn oversized_32bit_fields_are_rejected_not_truncated() {
        // A window of 2^33 + 5 must not silently decode as window 5.
        let mut buf = Vec::new();
        put_header(KIND_SHARD, &mut buf);
        put_varint(1, &mut buf); // shard
        put_varint((1u64 << 33) + 5, &mut buf); // window: exceeds u32
        assert!(matches!(
            decode_shard(&buf),
            Err(ShimError::WireMalformed {
                what: "32-bit field exceeds u32::MAX"
            })
        ));
    }

    #[test]
    fn scrape_request_and_unchanged_roundtrip() {
        let req = ScrapeRequest {
            last_window: 41,
            last_chunk: 7,
        };
        let mut buf = Vec::new();
        encode_request(&req, &mut buf);
        let (back, used) = decode_request(&buf).unwrap();
        assert_eq!(back, req);
        assert_eq!(used, buf.len());
        // A fresh scraper's request stays tiny (header + two varints).
        let mut empty = Vec::new();
        encode_request(&ScrapeRequest::default(), &mut empty);
        assert_eq!(empty.len(), 8);

        let mut ack = Vec::new();
        encode_unchanged(41, 7, &mut ack);
        match decode_response(&ack).unwrap() {
            (
                ScrapeResponse::Unchanged {
                    window: 41,
                    chunk: 7,
                },
                used,
            ) => {
                assert_eq!(used, ack.len());
            }
            other => panic!("bad ack decode: {other:?}"),
        }
        assert!(
            ack.len() < 12,
            "unchanged ack must stay tiny: {}",
            ack.len()
        );
    }

    #[test]
    fn response_decoder_dispatches_on_kind() {
        let snap = snapshot();
        let mut buf = Vec::new();
        encode_shard(&snap, &mut buf);
        match decode_response(&buf).unwrap() {
            (ScrapeResponse::Snapshot(back), used) => {
                assert_eq!(back, snap);
                assert_eq!(used, buf.len());
            }
            other => panic!("expected snapshot, got {other:?}"),
        }
        // A summary record is not a scrape response.
        let mut buf = Vec::new();
        encode_summary(
            &FleetSummary {
                generation: 1,
                shards: vec![],
                fused: vec![],
            },
            &mut buf,
        );
        assert!(matches!(
            decode_response(&buf),
            Err(ShimError::WireMalformed {
                what: "record kind is not a scrape response"
            })
        ));
    }

    #[test]
    fn encode_shard_view_matches_from_view_roundtrip() {
        let snap = snapshot();
        let view = SnapshotView {
            window: snap.window,
            chunk: snap.chunk,
            late_by_source: snap.late_by_source.clone(),
            posteriors: snap.posteriors.clone(),
            ..SnapshotView::default()
        };
        let mut direct = Vec::new();
        encode_shard_view(snap.shard, &snap.label, &view, &mut direct);
        let mut cloned = Vec::new();
        encode_shard(&snap, &mut cloned);
        assert_eq!(direct, cloned, "both encode paths emit identical bytes");
    }

    #[test]
    fn frames_roundtrip_and_hostile_prefixes_are_rejected_unallocated() {
        let payload = b"BayesPerf frame payload";
        let mut out = Vec::new();
        encode_frame(payload, &mut out).unwrap();
        let (back, used) = decode_frame(&out).unwrap();
        assert_eq!(back, payload.as_slice());
        assert_eq!(used, out.len());
        // Hostile prefix: length u32::MAX must be a typed error from the
        // prefix alone — no payload needed, nothing allocated.
        let hostile = u32::MAX.to_le_bytes();
        assert!(matches!(
            frame_len(hostile),
            Err(ShimError::WireMalformed {
                what: "frame length exceeds MAX_FRAME_LEN"
            })
        ));
        assert!(matches!(
            decode_frame(&hostile),
            Err(ShimError::WireMalformed { .. })
        ));
        // Exactly MAX_FRAME_LEN is allowed; one past is not.
        assert_eq!(
            frame_len((MAX_FRAME_LEN as u32).to_le_bytes()).unwrap(),
            MAX_FRAME_LEN
        );
        assert!(frame_len((MAX_FRAME_LEN as u32 + 1).to_le_bytes()).is_err());
        // Truncated payloads are truncation errors, not panics.
        assert!(matches!(
            decode_frame(&out[..out.len() - 1]),
            Err(ShimError::WireTruncated { .. })
        ));
        // Writers refuse oversized payloads symmetrically.
        let huge = vec![0u8; MAX_FRAME_LEN + 1];
        assert!(encode_frame(&huge, &mut Vec::new()).is_err());
    }

    #[test]
    fn telemetry_roundtrips_and_rejects_junk() {
        let mut hist = HistogramSnapshot::default();
        hist.buckets[0] = 3;
        hist.buckets[17] = 2;
        hist.buckets[HISTOGRAM_BUCKETS - 1] = 1;
        hist.sum = 987_654_321;
        let metrics = vec![
            MetricSnapshot {
                name: "supervisor.restarts".into(),
                value: MetricValue::Counter(4),
            },
            MetricSnapshot {
                name: "ingest.late_dropped{source=\"2\"}".into(),
                value: MetricValue::Counter(9),
            },
            MetricSnapshot {
                name: "fleet.idle".into(),
                value: MetricValue::Gauge(-0.25),
            },
            MetricSnapshot {
                name: "ep.sweep_ns".into(),
                value: MetricValue::Histogram(Box::new(hist)),
            },
        ];
        let mut req = Vec::new();
        encode_telemetry_request(&mut req);
        assert_eq!(req.len(), 6, "a telemetry request is just a header");
        assert_eq!(decode_telemetry_request(&req).unwrap(), req.len());

        let mut buf = Vec::new();
        encode_telemetry(&metrics, &mut buf);
        let (back, used) = decode_telemetry(&buf).unwrap();
        assert_eq!(back, metrics);
        assert_eq!(used, buf.len());

        // Truncations are typed, never panics.
        for cut in 0..buf.len() {
            assert!(decode_telemetry(&buf[..cut]).is_err());
        }
        // An out-of-range bucket index is rejected.
        let mut bad = Vec::new();
        put_header(KIND_TELEMETRY, &mut bad);
        put_varint(1, &mut bad); // one metric
        put_varint(1, &mut bad);
        bad.push(b'h');
        bad.push(METRIC_HISTOGRAM);
        put_varint(1, &mut bad); // one pair
        put_varint(HISTOGRAM_BUCKETS as u64, &mut bad); // index 64: out of range
        put_varint(1, &mut bad);
        put_varint(0, &mut bad); // sum
        assert!(matches!(
            decode_telemetry(&bad),
            Err(ShimError::WireMalformed {
                what: "histogram bucket index out of range"
            })
        ));
        // An unknown metric kind byte is rejected.
        let mut bad = Vec::new();
        put_header(KIND_TELEMETRY, &mut bad);
        put_varint(1, &mut bad);
        put_varint(1, &mut bad);
        bad.push(b'c');
        bad.push(9); // no such metric kind
        assert!(matches!(
            decode_telemetry(&bad),
            Err(ShimError::WireMalformed {
                what: "unknown metric kind"
            })
        ));
    }

    #[test]
    fn version_2_frames_are_rejected_typed_both_ways() {
        // A version-2 shard record (same body layout, older version byte)
        // must be refused by this build's readers with the typed version
        // error — mis-parsing or panicking would corrupt a fleet quietly.
        let mut buf = Vec::new();
        encode_shard(&snapshot(), &mut buf);
        let mut v2 = buf.clone();
        v2[4] = 2;
        for result in [
            decode_shard(&v2).map(|_| ()),
            decode_response(&v2).map(|_| ()),
        ] {
            assert_eq!(
                result,
                Err(ShimError::WireVersion {
                    got: 2,
                    supported: VERSION
                })
            );
        }
        // Symmetrically: a v2 reader sees version 3 on every new-kind
        // frame, so a telemetry dump shown to it is a version error too
        // (simulated here by checking the version byte is what a v2
        // reader's `!= 2` guard trips on).
        let mut dump = Vec::new();
        encode_telemetry(&[], &mut dump);
        assert_eq!(dump[4], 3);
        assert_eq!(
            decode_telemetry_request(&dump).map(|_| ()),
            Err(ShimError::WireMalformed {
                what: "record kind mismatch"
            }),
            "kind dispatch still applies after the version gate"
        );
    }

    #[test]
    fn v3_bodies_of_preexisting_kinds_are_byte_compatible_with_v2() {
        // The v2→v3 bump added record kinds only: everything after the
        // version byte of a shard/summary/request/ack frame is unchanged.
        let snap = snapshot();
        let mut shard = Vec::new();
        encode_shard(&snap, &mut shard);
        let mut req = Vec::new();
        encode_request(&ScrapeRequest::default(), &mut req);
        for frame in [&shard, &req] {
            assert_eq!(&frame[..4], &MAGIC);
            assert_eq!(frame[4], VERSION);
            // Flipping just the version byte back yields a well-formed
            // v2 frame (the layout a v2 peer would emit and accept).
            let mut v2 = (*frame).clone();
            v2[4] = 2;
            assert_eq!(&v2[5..], &frame[5..]);
        }
    }

    #[test]
    fn absurd_length_fields_are_rejected_before_allocation() {
        let mut buf = Vec::new();
        put_header(KIND_SHARD, &mut buf);
        put_varint(1, &mut buf); // shard
        put_varint(0, &mut buf); // window
        put_varint(1, &mut buf); // chunk
        put_varint(u64::MAX, &mut buf); // label length: absurd
        assert!(matches!(
            decode_shard(&buf),
            Err(ShimError::WireMalformed {
                what: "length field exceeds sanity bound"
            })
        ));
    }
}
