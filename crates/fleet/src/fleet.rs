//! The fleet service: sharded monitors, a lock-free ingest router, a
//! background fusion aggregator, and fleet-scoped read sessions.
//!
//! ```text
//!  producers                    Fleet                        readers
//!  ─────────                    ─────                        ───────
//!  push_sample(shard, s) ─▶ router (membership      FleetSession::read
//!                           snapshot cell, no        FleetSession::read_group
//!                           cross-shard locks)       FleetSession::read_derived
//!                              │                     FleetSession::subscribe
//!                              ▼                            ▲
//!                    shard 0 │ shard 1 │ … │ shard N        │ lock-free
//!                    Monitor │ Monitor │   │ Monitor        │ fused cell
//!                       │        │            │             │
//!                       ▼        ▼            ▼             │
//!                    aggregator thread: scrape snapshots ───┘
//!                    → precision-weighted fusion → publish
//! ```
//!
//! Each shard is a full [`Monitor`] (its own sample ring and inference
//! thread), so ingest fans out with **no cross-shard locking**: the
//! router resolves `ShardId → Monitor` through a read of the membership
//! snapshot cell (lock-free, wait-free for readers) and then touches only
//! that shard's ring. Shard churn republishes membership through the same
//! cell, so adding or draining machines never stalls producers on other
//! shards.
//!
//! The aggregator thread periodically scrapes every live shard's
//! posterior snapshot ([`Session::snapshot_into`]), fuses them with the
//! precision-weighted product ([`crate::fuse`]) and publishes a
//! [`FleetSnapshot`] through a second snapshot cell — fleet-level reads
//! are therefore exactly as wait-free as single-session reads, no matter
//! how many shards contribute.
//!
//! The aggregator thread is **supervised** the same way each shard's
//! inference thread is: its loop runs under `catch_unwind`, a crash
//! recovers the fused cell's writer and restarts the scrape loop (the
//! generation counter continues from the last published snapshot), and a
//! crash loop gives up after a bounded number of attempts. Local shard
//! monitors are watched through the same Healthy → Degraded → Stale →
//! Dead state machine ([`crate::health`]) a dead *remote* shard goes
//! through: every scrape pass probes each monitor's heartbeat and
//! [`ServiceState`], so a hung or crashed local inference thread ages
//! out of fusion instead of pinning its last posterior in the fleet
//! forever.

// The ISSUE-7 robustness audit: this file's non-test code must report
// failures as typed errors, never panic on them.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use crate::fuse::{Aggregator, FleetSnapshot, ShardStatus};
use crate::health::{FailureKind, HealthPolicy, HealthState, ShardHealth, ShardHealthView};
use crate::net::{state_idx, ScrapeMetrics, ScrapeTotals};
use crate::topology::{ShardId, ShardLabel};
use bayesperf_core::corrector::CorrectorConfig;
use bayesperf_core::snapshot::{snapshot_cell, SnapshotReader, SnapshotWriter};
use bayesperf_core::{
    derived_reading, Monitor, Reading, Selection, ServiceState, Session, ShimError, SnapshotView,
};
use bayesperf_events::{Catalog, EventId};
use bayesperf_inference::Gaussian;
use bayesperf_obs::{
    merge_metrics, Counter, FlightEvent, MetricSnapshot, SpanRecorder, Stage, Telemetry,
};
use bayesperf_simcpu::Sample;
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering::Relaxed};
use std::sync::mpsc::{
    channel, sync_channel, Receiver, RecvTimeoutError, Sender, SyncSender, TryRecvError,
    TrySendError,
};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Consecutive no-progress aggregator crashes tolerated before the
/// scrape plane gives up (subsequent [`Fleet::refresh`] calls return
/// [`ShimError::SessionClosed`]).
const AGG_MAX_CONSECUTIVE_RESTARTS: u32 = 8;

/// Backoff between aggregator restarts (flat — the aggregator holds no
/// per-chunk state worth an exponential schedule).
const AGG_RESTART_BACKOFF: Duration = Duration::from_millis(2);

/// Fleet construction parameters.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Corrector configuration every shard's monitor runs with.
    pub corrector: CorrectorConfig,
    /// Per-shard kernel↔shim ring capacity.
    pub ring_capacity: usize,
    /// How often the aggregator re-scrapes shard snapshots when idle
    /// (scrapes also happen on every [`Fleet::sync`]/[`Fleet::flush`]).
    pub scrape_interval: Duration,
    /// Staleness thresholds for the local liveness watchdog: a hung or
    /// crashed shard monitor ages through this policy's Healthy →
    /// Degraded → Stale → Dead machine, one round per aggregation pass.
    pub health: HealthPolicy,
}

impl FleetConfig {
    /// Defaults: 16Ki-sample rings, 200µs scrape cadence, default
    /// [`HealthPolicy`] staleness thresholds.
    pub fn new(corrector: CorrectorConfig) -> FleetConfig {
        FleetConfig {
            corrector,
            ring_capacity: 1 << 14,
            scrape_interval: Duration::from_micros(200),
            health: HealthPolicy::default(),
        }
    }
}

/// One live shard: a monitor plus the always-all-events session the
/// aggregator scrapes through.
struct ShardMember {
    id: ShardId,
    label: ShardLabel,
    monitor: Monitor,
    session: Session,
}

/// The membership view the router and aggregator read: shards in
/// insertion order. Published through a snapshot cell so lookups are
/// lock-free and churn never blocks producers.
type Membership = Vec<Arc<ShardMember>>;

/// Per-generation update streamed to [`FleetSession::subscribe`]rs.
#[derive(Debug, Clone)]
pub struct FleetUpdate {
    /// Aggregation pass that produced this update.
    pub generation: u64,
    /// Generations this subscriber lost immediately before this update
    /// (bounded-queue overflow), `0` when none.
    pub gap: u64,
    /// The fleet frontier: most advanced corrected window of any shard.
    pub max_window: u32,
    /// Contributing shards.
    pub shards: usize,
    /// Fused posteriors of the subscribing session's selected events.
    pub posteriors: Vec<(EventId, Gaussian)>,
}

/// A consistent fleet-level multi-event read (all readings from one fused
/// snapshot).
#[derive(Debug, Clone)]
pub struct FleetGroupReading {
    /// Aggregation pass of the snapshot.
    pub generation: u64,
    /// Most advanced corrected window of any contributing shard.
    pub max_window: u32,
    /// Contributing shards.
    pub shards: usize,
    /// Fused readings of the selected events, in catalog order.
    pub readings: Vec<(EventId, Reading)>,
}

/// Per-subscriber queue bound (same rationale as the per-monitor
/// subscriber bound: lossy beyond this backlog, gap reported).
const FLEET_QUEUE_CAP: usize = 1024;

struct FleetSubscriber {
    tx: SyncSender<FleetUpdate>,
    selection: Arc<Selection>,
    last_enqueued: Option<u64>,
}

/// State shared between the [`Fleet`], its sessions/routers and the
/// aggregator thread.
struct FleetShared {
    catalog: Arc<Catalog>,
    members: SnapshotReader<Membership>,
    fused: SnapshotReader<FleetSnapshot>,
    subscribers: Mutex<Vec<FleetSubscriber>>,
    closed: AtomicBool,
    /// The fleet's telemetry plane (registry + spans + flight recorder).
    /// Scraper-backed sessions share the scraper's bundle instead.
    tele: Telemetry,
    /// Crash restarts of the aggregator thread, as the registry counter
    /// `fleet.agg_restarts` (monotonic).
    agg_restarts: Counter,
    /// Live scrape-plane counter handles when this shared state backs a
    /// networked [`FleetScraper`](crate::FleetScraper) session; `None`
    /// for in-process fleets (no scrape plane — totals read as zero).
    scrape_metrics: Option<ScrapeMetrics>,
    /// Last wire-scraped fleet-wide metric dump (scraper-backed
    /// sessions); empty for in-process fleets, which merge the live
    /// per-shard registries instead.
    scraped: Arc<Mutex<Vec<MetricSnapshot>>>,
}

impl FleetShared {
    /// Resolves a shard id through the membership cell (lock-free).
    fn member(&self, shard: ShardId) -> Result<Arc<ShardMember>, ShimError> {
        if self.closed.load(Relaxed) {
            return Err(ShimError::SessionClosed);
        }
        let guard = self.members.read().ok_or(ShimError::SessionClosed)?;
        guard
            .iter()
            .find(|m| m.id == shard)
            .cloned()
            .ok_or(ShimError::UnknownShard { shard: shard.raw() })
    }
}

/// Control messages to the aggregator thread.
enum AggControl {
    /// Scrape + fuse + publish now, then ack (the deterministic barrier
    /// behind [`Fleet::sync`]/[`Fleet::flush`]).
    Refresh(Sender<()>),
    /// Membership churned: wake immediately and drop any idle backoff
    /// (the next scrape must observe the new membership promptly even if
    /// the fleet was quiescent).
    Poke,
    /// Fault-injection test hook: the aggregator panics when it dequeues
    /// this, exercising the supervisor's crash-containment path.
    Panic,
    /// Exit the aggregator loop.
    Shutdown,
}

/// A fleet of sharded BayesPerf monitors with fused fleet-level reads.
///
/// One [`Monitor`] per shard (simulated machine/socket), a lock-free
/// sample router, and a background aggregator fusing per-shard posteriors
/// into a fleet posterior — see the module docs for the data flow.
/// Dropping (or [`Fleet::close`]-ing) the fleet drains every shard and
/// stops the aggregator.
pub struct Fleet {
    shared: Arc<FleetShared>,
    members_writer: SnapshotWriter<Membership>,
    /// Writer-side copy of the membership (the cell holds clones).
    live: Vec<Arc<ShardMember>>,
    next_id: u32,
    config: FleetConfig,
    control: Sender<AggControl>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for Fleet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Fleet")
            .field("shards", &self.live.len())
            .field("closed", &self.shared.closed.load(Relaxed))
            .finish()
    }
}

impl Fleet {
    /// Creates an empty fleet over `catalog` and starts the (supervised)
    /// aggregator thread. Add machines with [`Fleet::add_shard`].
    ///
    /// Returns [`ShimError::SpawnFailed`] if the OS refuses the thread.
    pub fn new(catalog: &Catalog, config: FleetConfig) -> Result<Fleet, ShimError> {
        let catalog = Arc::new(catalog.clone());
        let (mut members_writer, members_reader) = snapshot_cell::<Membership>();
        members_writer.publish(Vec::new());
        let (fused_writer, fused_reader) = snapshot_cell::<FleetSnapshot>();
        let (control, control_rx) = channel();
        let tele = Telemetry::new();
        let agg_restarts = tele.registry().counter("fleet.agg_restarts");
        let shared = Arc::new(FleetShared {
            catalog: catalog.clone(),
            members: members_reader,
            fused: fused_reader,
            subscribers: Mutex::new(Vec::new()),
            closed: AtomicBool::new(false),
            tele,
            agg_restarts,
            scrape_metrics: None,
            scraped: Arc::new(Mutex::new(Vec::new())),
        });
        let handle = {
            let shared = shared.clone();
            let interval = config.scrape_interval;
            let health = config.health;
            std::thread::Builder::new()
                .name("bayesperf-fleet-agg".into())
                .spawn(move || {
                    supervise_aggregator(shared, fused_writer, interval, health, control_rx)
                })
                .map_err(|_| ShimError::SpawnFailed {
                    what: "fleet aggregator",
                })?
        };
        Ok(Fleet {
            shared,
            members_writer,
            live: Vec::new(),
            next_id: 0,
            config,
            control,
            handle: Some(handle),
        })
    }

    /// The monitored catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.shared.catalog
    }

    /// Adds a shard: spawns a dedicated [`Monitor`] (ring + supervised
    /// inference thread) for the labelled machine/socket and publishes
    /// the new membership. Ids are never reused across churn.
    ///
    /// Returns [`ShimError::SpawnFailed`] if the OS refuses the shard's
    /// inference thread (the fleet itself stays usable).
    pub fn add_shard(&mut self, label: ShardLabel) -> Result<ShardId, ShimError> {
        let id = ShardId::from_raw(self.next_id);
        self.next_id += 1;
        let monitor = Monitor::new(
            &self.shared.catalog,
            self.config.corrector.clone(),
            self.config.ring_capacity,
        )?;
        let session = monitor.session().open()?;
        self.live.push(Arc::new(ShardMember {
            id,
            label,
            monitor,
            session,
        }));
        self.members_writer.publish(self.live.clone());
        // Wake the aggregator out of any idle backoff: the new shard
        // must appear in the next fused snapshot promptly.
        let _ = self.control.send(AggControl::Poke);
        Ok(id)
    }

    /// Removes a shard: unpublishes it from the membership (in-flight
    /// routed pushes finish against the old view) and closes its monitor.
    /// Its contribution disappears from the next fused snapshot.
    pub fn remove_shard(&mut self, shard: ShardId) -> Result<(), ShimError> {
        let i = self
            .live
            .iter()
            .position(|m| m.id == shard)
            .ok_or(ShimError::UnknownShard { shard: shard.raw() })?;
        self.live.remove(i);
        // Publish twice: the cell double-buffers, so the first publish
        // leaves the previous membership (holding the removed shard's
        // Arc) in the spare slot; the second overwrites it, making the
        // monitor shutdown deterministic rather than deferred to the
        // next churn event.
        self.members_writer.publish(self.live.clone());
        self.members_writer.publish(self.live.clone());
        // Wake the aggregator: the removed shard's contribution must
        // leave the fused snapshot without waiting out an idle backoff.
        let _ = self.control.send(AggControl::Poke);
        Ok(())
    }

    /// Current shards, in insertion order.
    pub fn shards(&self) -> Vec<(ShardId, ShardLabel)> {
        self.live.iter().map(|m| (m.id, m.label.clone())).collect()
    }

    /// A cloneable, `Send + Sync` ingest handle for producer threads.
    pub fn router(&self) -> FleetRouter {
        FleetRouter {
            shared: self.shared.clone(),
        }
    }

    /// Routes one kernel sample to its shard's ring. Lock-free resolve
    /// (membership snapshot cell), per-shard ring push — producers on
    /// different shards never contend. Samples must stay window-ordered
    /// *per shard* (see [`Monitor::push_sample`]).
    pub fn push_sample(&self, shard: ShardId, sample: Sample) -> Result<(), ShimError> {
        self.shared.member(shard)?.monitor.push_sample(sample)
    }

    /// A direct read session on one shard (per-machine drill-down).
    pub fn shard_session(&self, shard: ShardId) -> Result<Session, ShimError> {
        Ok(self.shared.member(shard)?.session.clone())
    }

    /// Runs `f` against one shard's local [`Monitor`] — supervision
    /// drill-down (restart counters, heartbeat, schedule hooks,
    /// fault-injection) on a fleet member without exposing ownership of
    /// the monitor itself.
    pub fn with_shard_monitor<R>(
        &self,
        shard: ShardId,
        f: impl FnOnce(&Monitor) -> R,
    ) -> Result<R, ShimError> {
        Ok(f(&self.shared.member(shard)?.monitor))
    }

    /// Blocks until every shard has ingested and corrected everything
    /// pushed before this call, then re-fuses and publishes the fleet
    /// snapshot — the deterministic fleet-wide barrier.
    pub fn sync(&self) -> Result<(), ShimError> {
        for m in &self.live {
            m.monitor.sync()?;
        }
        self.refresh()
    }

    /// Flushes every shard's ragged tail (partial final chunk), then
    /// re-fuses and publishes.
    pub fn flush(&self) -> Result<(), ShimError> {
        for m in &self.live {
            m.monitor.flush()?;
        }
        self.refresh()
    }

    /// Forces an aggregation pass now and blocks until it is published.
    pub fn refresh(&self) -> Result<(), ShimError> {
        let (tx, rx) = channel();
        self.control
            .send(AggControl::Refresh(tx))
            .map_err(|_| ShimError::SessionClosed)?;
        rx.recv().map_err(|_| ShimError::SessionClosed)
    }

    /// Starts building a fleet-scoped read session.
    pub fn session(&self) -> FleetSessionBuilder<'_> {
        FleetSessionBuilder {
            fleet: self,
            events: None,
            err: None,
        }
    }

    /// The latest fused snapshot (with per-shard posteriors for
    /// percentile/straggler views).
    pub fn snapshot(&self) -> Result<FleetSnapshot, ShimError> {
        read_snapshot(&self.shared)
    }

    /// Crash restarts the aggregator supervisor has performed (served
    /// from the registry counter `fleet.agg_restarts`).
    pub fn agg_restarts(&self) -> u64 {
        self.shared.agg_restarts.get()
    }

    /// The fleet's telemetry plane: the `fleet.*` / `health.*` metric
    /// namespace, the aggregator's fuse span ring, and the flight
    /// recorder logging aggregator restarts and local-shard health
    /// transitions. Per-shard service telemetry lives on each shard's
    /// [`Monitor`] (reach it via [`Fleet::with_shard_monitor`]).
    pub fn telemetry(&self) -> &Telemetry {
        &self.shared.tele
    }

    /// Fault-injection test hook: makes the aggregator thread panic on
    /// its next control dequeue, exercising the supervisor's
    /// crash-containment path. Observe recovery via
    /// [`Fleet::agg_restarts`].
    pub fn inject_agg_panic(&self) -> Result<(), ShimError> {
        self.control
            .send(AggControl::Panic)
            .map_err(|_| ShimError::SessionClosed)
    }

    /// Drains every shard, stops their monitors and the aggregator.
    /// Subsequent fleet reads and pushes return
    /// [`ShimError::SessionClosed`]. Idempotent; also runs on drop.
    pub fn close(&mut self) {
        let Some(handle) = self.handle.take() else {
            return;
        };
        // Dropping the members closes each monitor (flushing its tail).
        self.live.clear();
        self.members_writer.publish(Vec::new());
        self.members_writer.publish(Vec::new());
        let _ = self.control.send(AggControl::Shutdown);
        let _ = handle.join();
        self.shared.closed.store(true, Relaxed);
        // Dropping the senders ends subscriber iterators; `subscribe`
        // re-checks `closed` under this lock, so no late registration
        // survives the clear.
        self.shared
            .subscribers
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clear();
    }
}

impl Drop for Fleet {
    fn drop(&mut self) {
        self.close();
    }
}

/// Cloneable producer handle: routes samples to shards through the
/// membership cell without holding any fleet-wide lock.
#[derive(Clone)]
pub struct FleetRouter {
    shared: Arc<FleetShared>,
}

impl std::fmt::Debug for FleetRouter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FleetRouter").finish()
    }
}

impl FleetRouter {
    /// See [`Fleet::push_sample`].
    pub fn push_sample(&self, shard: ShardId, sample: Sample) -> Result<(), ShimError> {
        self.shared.member(shard)?.monitor.push_sample(sample)
    }
}

fn read_snapshot(shared: &FleetShared) -> Result<FleetSnapshot, ShimError> {
    if shared.closed.load(Relaxed) {
        return Err(ShimError::SessionClosed);
    }
    let guard = shared.fused.read().ok_or(ShimError::NoShards)?;
    Ok(guard.clone())
}

/// Configures and opens a [`FleetSession`]. Event selection defaults to
/// the whole catalog, mirroring [`Monitor::session`].
#[derive(Debug)]
pub struct FleetSessionBuilder<'f> {
    fleet: &'f Fleet,
    events: Option<Vec<EventId>>,
    err: Option<ShimError>,
}

impl FleetSessionBuilder<'_> {
    /// Restricts the session to `events` (adds to any previous selection).
    pub fn events(mut self, events: &[EventId]) -> Self {
        for &e in events {
            self = self.event(e);
        }
        self
    }

    /// Adds one event to the selection.
    pub fn event(mut self, event: EventId) -> Self {
        if event.index() >= self.fleet.catalog().len() {
            self.err.get_or_insert(ShimError::UnknownEvent(event));
            return self;
        }
        self.events.get_or_insert_with(Vec::new).push(event);
        self
    }

    /// Adds a derived event by name: its components join the selection so
    /// [`FleetSession::read_derived`] can evaluate it.
    pub fn derived(mut self, name: &str) -> Self {
        let components = self
            .fleet
            .catalog()
            .derived_events()
            .iter()
            .find(|d| d.name == name)
            .map(|d| d.events());
        match components {
            Some(events) => self.events(&events),
            None => {
                self.err
                    .get_or_insert(ShimError::UnknownDerived(name.to_string()));
                self
            }
        }
    }

    /// Opens the session.
    pub fn open(self) -> Result<FleetSession, ShimError> {
        if let Some(err) = self.err {
            return Err(err);
        }
        if self.fleet.shared.closed.load(Relaxed) {
            return Err(ShimError::SessionClosed);
        }
        Ok(FleetSession {
            shared: self.fleet.shared.clone(),
            selection: Arc::new(Selection::new(self.events)),
        })
    }
}

/// Builds a [`FleetSession`] over a networked scraper's published fused
/// snapshots (see
/// [`FleetScraper::session`](crate::FleetScraper::session)): no local
/// members, the scraper's telemetry bundle and live scrape counters, and
/// the scraper's cached fleet-wide metric dump.
pub(crate) fn scraper_session(
    catalog: &Catalog,
    fused: SnapshotReader<FleetSnapshot>,
    tele: Telemetry,
    scrape_metrics: ScrapeMetrics,
    scraped: Arc<Mutex<Vec<MetricSnapshot>>>,
) -> FleetSession {
    let (mut members_writer, members_reader) = snapshot_cell::<Membership>();
    members_writer.publish(Vec::new());
    let agg_restarts = tele.registry().counter("fleet.agg_restarts");
    FleetSession {
        shared: Arc::new(FleetShared {
            catalog: Arc::new(catalog.clone()),
            members: members_reader,
            fused,
            subscribers: Mutex::new(Vec::new()),
            closed: AtomicBool::new(false),
            tele,
            agg_restarts,
            scrape_metrics: Some(scrape_metrics),
            scraped,
        }),
        selection: Arc::new(Selection::new(None)),
    }
}

/// A fleet-scoped read handle mirroring [`Session`]: cheap to clone,
/// sendable, and wait-free — every read is served from the latest fused
/// snapshot, never from the shards themselves.
#[derive(Clone)]
pub struct FleetSession {
    shared: Arc<FleetShared>,
    selection: Arc<Selection>,
}

impl std::fmt::Debug for FleetSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FleetSession")
            .field("selection", &self.selection)
            .finish()
    }
}

impl FleetSession {
    fn ensure_open(&self) -> Result<(), ShimError> {
        if self.shared.closed.load(Relaxed) {
            Err(ShimError::SessionClosed)
        } else {
            Ok(())
        }
    }

    fn check_event(&self, event: EventId) -> Result<(), ShimError> {
        if event.index() >= self.shared.catalog.len() || !self.selection.contains(event) {
            return Err(ShimError::UnknownEvent(event));
        }
        Ok(())
    }

    /// The monitored catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.shared.catalog
    }

    /// Reads the fleet-fused posterior of `event` (one lock-free
    /// acquisition of the fused cell, independent of shard count).
    pub fn read(&self, event: EventId) -> Result<Reading, ShimError> {
        self.ensure_open()?;
        self.check_event(event)?;
        let guard = self.shared.fused.read().ok_or(ShimError::NoShards)?;
        Ok(Reading::from_gaussian(&guard.fused[event.index()]))
    }

    /// Reads all selected events from **one** fused snapshot.
    pub fn read_group(&self) -> Result<FleetGroupReading, ShimError> {
        self.ensure_open()?;
        let guard = self.shared.fused.read().ok_or(ShimError::NoShards)?;
        let readings = self
            .selection
            .iter(&self.shared.catalog)
            .map(|e| (e, Reading::from_gaussian(&guard.fused[e.index()])))
            .collect();
        Ok(FleetGroupReading {
            generation: guard.generation,
            max_window: guard.max_window(),
            shards: guard.shards.len(),
            readings,
        })
    }

    /// Evaluates a derived event on the fused posteriors — the same
    /// central-difference propagation as
    /// [`Session::read_derived`], so per-machine and
    /// fleet-level metrics agree by construction. The session must have
    /// selected the metric's components
    /// ([`FleetSessionBuilder::derived`] does exactly that).
    pub fn read_derived(&self, name: &str) -> Result<Reading, ShimError> {
        self.ensure_open()?;
        let derived = self
            .shared
            .catalog
            .derived_events()
            .iter()
            .find(|d| d.name == name)
            .ok_or_else(|| ShimError::UnknownDerived(name.to_string()))?;
        for e in derived.events() {
            self.check_event(e)?;
        }
        let guard = self.shared.fused.read().ok_or(ShimError::NoShards)?;
        Ok(derived_reading(derived, &guard.fused))
    }

    /// Every contributing shard's own posterior of `event`, sorted by
    /// shard id — the drill-down behind the fused number.
    pub fn shard_readings(&self, event: EventId) -> Result<Vec<(ShardId, Reading)>, ShimError> {
        self.ensure_open()?;
        self.check_event(event)?;
        let guard = self.shared.fused.read().ok_or(ShimError::NoShards)?;
        Ok(guard
            .shards
            .iter()
            .zip(&guard.per_shard)
            .map(|(s, p)| (s.shard, Reading::from_gaussian(&p[event.index()])))
            .collect())
    }

    /// The latest fused snapshot (percentile/straggler views included).
    pub fn snapshot(&self) -> Result<FleetSnapshot, ShimError> {
        read_snapshot(&self.shared)
    }

    /// Cumulative scrape-plane totals — the running sums of every
    /// [`RoundReport`](crate::RoundReport) the backing
    /// [`FleetScraper`](crate::FleetScraper) has produced, read live
    /// from its counter handles so byte/failure history survives whoever
    /// pumped `poll_round`. In-process fleets have no scrape plane:
    /// every field reads zero.
    pub fn scrape_totals(&self) -> Result<ScrapeTotals, ShimError> {
        self.ensure_open()?;
        Ok(self
            .shared
            .scrape_metrics
            .as_ref()
            .map(ScrapeMetrics::totals)
            .unwrap_or_default())
    }

    /// The fleet-wide metric dump: the fleet's own registry merged with
    /// every live shard monitor's registry (in-process fleets) and with
    /// the last wire-scraped shard dump (scraper-backed sessions — pump
    /// [`FleetScraper::poll_telemetry`](crate::FleetScraper::poll_telemetry)
    /// to refresh it). Render with
    /// [`render_prometheus`](bayesperf_obs::render_prometheus).
    pub fn fleet_metrics(&self) -> Result<Vec<MetricSnapshot>, ShimError> {
        self.ensure_open()?;
        let mut out = self.shared.tele.registry().snapshot();
        if let Some(members) = self.shared.members.read() {
            for m in members.iter() {
                merge_metrics(&mut out, &m.session.telemetry().registry().snapshot());
            }
        }
        let scraped = self
            .shared
            .scraped
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        merge_metrics(&mut out, &scraped);
        Ok(out)
    }

    /// Subscribes to the per-generation fused update stream (bounded
    /// queue; a lagging consumer loses updates and the next delivered one
    /// carries the skip in [`FleetUpdate::gap`]).
    pub fn subscribe(&self) -> FleetUpdates {
        self.subscribe_with_capacity(FLEET_QUEUE_CAP)
    }

    /// [`FleetSession::subscribe`] with an explicit queue bound.
    pub fn subscribe_with_capacity(&self, capacity: usize) -> FleetUpdates {
        let (tx, rx) = sync_channel(capacity.max(1));
        {
            let mut subs = self
                .shared
                .subscribers
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            if !self.shared.closed.load(Relaxed) {
                subs.push(FleetSubscriber {
                    tx,
                    selection: self.selection.clone(),
                    last_enqueued: None,
                });
            }
        }
        FleetUpdates { rx }
    }
}

/// Blocking iterator over a fleet session's [`FleetUpdate`] stream.
#[derive(Debug)]
pub struct FleetUpdates {
    rx: Receiver<FleetUpdate>,
}

impl FleetUpdates {
    /// Non-blocking poll: `Ok(Some(update))`, `Ok(None)` when open but
    /// empty, `Err(SessionClosed)` once the fleet closed and the queue
    /// drained.
    pub fn try_next(&mut self) -> Result<Option<FleetUpdate>, ShimError> {
        match self.rx.try_recv() {
            Ok(u) => Ok(Some(u)),
            Err(TryRecvError::Empty) => Ok(None),
            Err(TryRecvError::Disconnected) => Err(ShimError::SessionClosed),
        }
    }
}

impl Iterator for FleetUpdates {
    type Item = FleetUpdate;

    fn next(&mut self) -> Option<FleetUpdate> {
        self.rx.recv().ok()
    }
}

/// Widest idle multiplier: an idle fleet's aggregator decays to polling
/// at `interval × 2⁶ = 64×` — slow enough to stop burning a core on
/// stamp pre-checks, bounded so a fleet that resumes without churn is
/// still noticed promptly. Churn wakes it immediately via
/// [`AggControl::Poke`].
const IDLE_BACKOFF_MAX_SHIFT: u32 = 6;

/// The aggregator's wait before its next unsolicited scrape, after
/// `idle_streak` consecutive passes in which no shard stamp moved:
/// `interval × 2^min(streak, 6)`. Pure, so the schedule is testable
/// without a thread.
fn idle_backoff_interval(interval: Duration, idle_streak: u32) -> Duration {
    interval.saturating_mul(1 << idle_streak.min(IDLE_BACKOFF_MAX_SHIFT))
}

/// Per-shard liveness tracking the aggregator keeps for *local*
/// monitors: the health counters plus the last heartbeat and snapshot
/// stamp observed, so a frozen heartbeat on a non-idle service reads as
/// a stall — unless its snapshot stamp moved, which is definitive proof
/// the service published since the previous round.
struct LocalProbe {
    health: ShardHealth,
    last_beats: u64,
    last_stamp: Option<(u32, u64)>,
    /// Last derived health state, for transition telemetry.
    state: HealthState,
}

impl Default for LocalProbe {
    fn default() -> LocalProbe {
        LocalProbe {
            health: ShardHealth::default(),
            last_beats: 0,
            last_stamp: None,
            state: HealthState::Healthy,
        }
    }
}

/// The background aggregator: scrapes shard snapshots, fuses, publishes.
struct AggregatorService {
    shared: Arc<FleetShared>,
    writer: SnapshotWriter<FleetSnapshot>,
    interval: Duration,
    /// Staleness thresholds for the local liveness watchdog.
    policy: HealthPolicy,
    /// Liveness state per shard, aged one round per aggregation pass —
    /// the same machine a dead remote shard goes through in `net`.
    probes: HashMap<ShardId, LocalProbe>,
    agg: Aggregator,
    scratch: SnapshotView,
    /// `(shard, chunk, window)` triples of the last fused pass — the
    /// change detector that keeps idle scrapes from republishing.
    last_key: Vec<(ShardId, u64, u32)>,
    key: Vec<(ShardId, u64, u32)>,
    generation: u64,
    /// Fuse-stage span ring for this incarnation.
    spans: SpanRecorder,
    /// `health.transitions{state=...}` counters, indexed by [`state_idx`].
    transitions: [Counter; 4],
}

impl AggregatorService {
    fn new(
        shared: Arc<FleetShared>,
        writer: SnapshotWriter<FleetSnapshot>,
        interval: Duration,
        policy: HealthPolicy,
        generation: u64,
    ) -> AggregatorService {
        let n_events = shared.catalog.len();
        let spans = shared.tele.spans().recorder();
        let transitions = [
            HealthState::Healthy,
            HealthState::Degraded,
            HealthState::Stale,
            HealthState::Dead,
        ]
        .map(|s| {
            shared.tele.registry().counter(&bayesperf_obs::labeled(
                "health.transitions",
                "state",
                s.name(),
            ))
        });
        AggregatorService {
            shared,
            writer,
            interval,
            policy,
            probes: HashMap::new(),
            agg: Aggregator::new(n_events),
            scratch: SnapshotView::default(),
            last_key: Vec::new(),
            key: Vec::new(),
            generation,
            spans,
            transitions,
        }
    }

    fn run(mut self, control: &Receiver<AggControl>) {
        // Consecutive idle passes (no shard stamp moved). The wait grows
        // exponentially with the streak — an idle fleet parks instead of
        // busy-spinning stamp pre-checks at full scrape rate — and any
        // control message (refresh, membership poke) resets it.
        let mut idle_streak = 0u32;
        loop {
            let wait = idle_backoff_interval(self.interval, idle_streak);
            match control.recv_timeout(wait) {
                Ok(AggControl::Refresh(ack)) => {
                    self.scrape();
                    idle_streak = 0;
                    let _ = ack.send(());
                }
                Ok(AggControl::Poke) => {
                    self.scrape();
                    idle_streak = 0;
                }
                Ok(AggControl::Panic) => {
                    panic!("injected aggregator panic (test hook)");
                }
                Ok(AggControl::Shutdown) | Err(RecvTimeoutError::Disconnected) => break,
                Err(RecvTimeoutError::Timeout) => {
                    if self.scrape() {
                        idle_streak = 0;
                    } else {
                        idle_streak = idle_streak.saturating_add(1);
                    }
                }
            }
        }
    }

    /// One aggregation pass: scrape every live shard's snapshot, fuse,
    /// and publish — but only when some shard actually progressed (or
    /// membership changed), so idle fleets don't spin generations.
    /// Returns whether anything moved (`false` = idle pass, eligible for
    /// backoff).
    fn scrape(&mut self) -> bool {
        let members: Membership = match self.shared.members.read() {
            // Copy the Arcs out and drop the guard before touching any
            // shard: scraping must never pin the membership slot.
            Some(guard) => guard.clone(),
            None => return false,
        };
        // Liveness watchdog: before any snapshot reads, probe each local
        // monitor's supervisor state and heartbeat, and age its health
        // one round. A hung service (heartbeat frozen while not idle),
        // one mid-restart, or one terminally failed goes through the
        // identical Healthy → Degraded → Stale → Dead machine a dead
        // remote shard does in the networked scrape plane.
        let mut any_unhealthy = false;
        self.probes
            .retain(|id, _| members.iter().any(|m| m.id == *id));
        for m in &members {
            let probe = self.probes.entry(m.id).or_default();
            let (beats, idle) = m.monitor.heartbeat();
            let stamp = m.session.snapshot_stamp().ok();
            // A snapshot stamp that moved since the previous round is
            // definitive liveness proof: the service *published*. The
            // heartbeat alone is racy here — a long tail correction
            // holds `idle` false with `beats` frozen, and a refresh
            // forced right after its flush ack can probe the thread in
            // the gap before it parks, misreading a healthy monitor as
            // stalled (and a Dead verdict would exclude its fresh
            // snapshot from the very pass that was forced to fuse it).
            let advanced = stamp.is_some() && stamp != probe.last_stamp;
            let fate = match m.monitor.service_state() {
                // A permanently down service cannot refresh its snapshot
                // again; classify it like a dead link.
                ServiceState::Failed { .. } => Some(FailureKind::Link),
                // Mid-restart: this round's snapshot is a cached copy.
                ServiceState::Restarting { .. } => Some(FailureKind::Timeout),
                ServiceState::Running => {
                    if idle || beats != probe.last_beats || advanced {
                        None
                    } else {
                        // Not idle, yet neither the heartbeat nor the
                        // snapshot advanced since the previous pass: a
                        // stalled service.
                        Some(FailureKind::Timeout)
                    }
                }
                // `ServiceState` is non-exhaustive; treat future states
                // conservatively as a missed round.
                _ => Some(FailureKind::Timeout),
            };
            probe.last_beats = beats;
            if stamp.is_some() {
                probe.last_stamp = stamp;
            }
            match fate {
                None => probe.health.on_success(),
                Some(kind) => probe.health.on_failure(kind),
            }
            if probe.health.age > 0 {
                any_unhealthy = true;
            }
            let state = ShardHealthView::observe(m.id, &probe.health, &self.policy).state;
            if state != probe.state {
                self.transitions[state_idx(state)].incr();
                self.shared
                    .tele
                    .flight()
                    .record(FlightEvent::HealthTransition {
                        shard: m.id.raw(),
                        from: probe.state.name(),
                        to: state.name(),
                    });
                probe.state = state;
            }
        }
        // Cheap pre-pass: `(shard, chunk, window)` stamps only, no
        // posterior copies or label clones. The idle steady state (no
        // shard progressed between scrapes, everybody healthy) exits
        // here; any unhealthy shard forces full passes, because its
        // inflation grows — and its fused weight shrinks — every round
        // even while the stamps stand still.
        self.key.clear();
        for m in &members {
            if let Ok((window, chunk)) = m.session.snapshot_stamp() {
                self.key.push((m.id, chunk, window));
            }
        }
        self.key.sort_unstable();
        if self.key == self.last_key && !any_unhealthy {
            return false;
        }
        // Something moved: pay for the full scrape. A shard may have
        // advanced again since its stamp was read — absorbing the newer
        // snapshot is fine, the next pre-pass simply fires once more.
        let fuse_start = self.spans.now_ns();
        self.agg.begin();
        self.key.clear();
        for m in &members {
            let view = match self.probes.get(&m.id) {
                Some(p) => ShardHealthView::observe(m.id, &p.health, &self.policy),
                None => ShardHealthView::healthy(m.id),
            };
            // A shard that has not published yet (or is mid-shutdown)
            // simply doesn't contribute this pass — but its health row
            // still appears in the published snapshot.
            if m.session.snapshot_into(&mut self.scratch).is_ok() {
                let status = ShardStatus {
                    shard: m.id,
                    label: m.label.clone(),
                    window: self.scratch.window,
                    chunk: self.scratch.chunk,
                    late_by_source: self.scratch.late_by_source.clone(),
                };
                let contributed = view.state.contributes();
                if self
                    .agg
                    .absorb_shard(status, view, &self.scratch.posteriors)
                    .is_ok()
                    && contributed
                {
                    self.key
                        .push((m.id, self.scratch.chunk, self.scratch.window));
                }
            } else {
                self.agg.note_health(view);
            }
        }
        self.key.sort_unstable();
        if self.agg.absorbed() == 0 {
            // Membership changed but nobody has posteriors: the previous
            // fused snapshot stays published (stale-but-consistent, like
            // the per-monitor cell after its last chunk).
            std::mem::swap(&mut self.last_key, &mut self.key);
            return true;
        }
        self.generation += 1;
        let snap = match self.agg.fuse(self.generation) {
            Ok(snap) => snap,
            Err(_) => return true,
        };
        let max_window = snap.max_window();
        self.notify_subscribers(&snap);
        self.writer.publish(snap);
        self.spans.record_since(Stage::Fuse, max_window, fuse_start);
        std::mem::swap(&mut self.last_key, &mut self.key);
        true
    }

    fn notify_subscribers(&self, snap: &FleetSnapshot) {
        let mut subs = self
            .shared
            .subscribers
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        let max_window = snap.max_window();
        subs.retain_mut(|sub| {
            let posteriors: Vec<(EventId, Gaussian)> = sub
                .selection
                .iter(&self.shared.catalog)
                .map(|e| (e, snap.fused[e.index()]))
                .collect();
            let gap = sub
                .last_enqueued
                .map_or(0, |last| snap.generation.saturating_sub(last + 1));
            match sub.tx.try_send(FleetUpdate {
                generation: snap.generation,
                gap,
                max_window,
                shards: snap.shards.len(),
                posteriors,
            }) {
                Ok(()) => {
                    sub.last_enqueued = Some(snap.generation);
                    true
                }
                Err(TrySendError::Full(_)) => true,
                Err(TrySendError::Disconnected(_)) => false,
            }
        });
    }
}

/// The supervised aggregator loop, run on the spawned
/// `bayesperf-fleet-agg` thread: each [`AggregatorService`] incarnation
/// runs under `catch_unwind`. A panic is contained — the fused cell's
/// writer is reclaimed (readers kept serving the last fused snapshot
/// throughout), the generation counter continues from that snapshot, and
/// the scrape loop restarts after a short flat backoff. A crash loop
/// (consecutive restarts without a newly published generation) gives up
/// after [`AGG_MAX_CONSECUTIVE_RESTARTS`]; queued [`Fleet::refresh`]
/// acks are dropped on supervisor exit, erroring their callers.
fn supervise_aggregator(
    shared: Arc<FleetShared>,
    writer: SnapshotWriter<FleetSnapshot>,
    interval: Duration,
    policy: HealthPolicy,
    control: Receiver<AggControl>,
) {
    let mut writer = Some(writer);
    let mut consecutive = 0u32;
    loop {
        let Some(w) = writer.take() else {
            break;
        };
        let gen_before = shared.fused.read().map(|g| g.generation).unwrap_or(0);
        let svc = AggregatorService::new(shared.clone(), w, interval, policy, gen_before);
        match catch_unwind(AssertUnwindSafe(|| svc.run(&control))) {
            // Orderly shutdown (close / control channel dropped).
            Ok(()) => break,
            Err(payload) => {
                let restarts = shared.agg_restarts.fetch_add(1) + 1;
                shared.tele.flight().record(FlightEvent::AggRestart {
                    restarts,
                    cause: panic_cause(payload),
                });
                // Reclaim publication rights on the intact fused cell;
                // the crashed incarnation's writer dropped mid-unwind.
                writer = shared.fused.recover_writer();
                let progressed =
                    shared.fused.read().map(|g| g.generation).unwrap_or(0) > gen_before;
                if progressed {
                    consecutive = 0;
                }
                consecutive += 1;
                if consecutive > AGG_MAX_CONSECUTIVE_RESTARTS {
                    break;
                }
                std::thread::sleep(AGG_RESTART_BACKOFF);
            }
        }
    }
    // Receiver drops here: queued Refresh acks error their callers and
    // subsequent control sends fail with SessionClosed.
}

/// Best-effort panic-payload rendering for flight-recorder causes.
fn panic_cause(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_backoff_doubles_then_caps() {
        let base = Duration::from_micros(200);
        assert_eq!(idle_backoff_interval(base, 0), base);
        assert_eq!(idle_backoff_interval(base, 1), base * 2);
        assert_eq!(idle_backoff_interval(base, 3), base * 8);
        assert_eq!(idle_backoff_interval(base, 6), base * 64);
        // The cap holds for arbitrarily long idle streaks — no overflow,
        // no unbounded sleep.
        assert_eq!(idle_backoff_interval(base, 7), base * 64);
        assert_eq!(idle_backoff_interval(base, u32::MAX), base * 64);
        // Saturates instead of panicking for huge base intervals.
        let huge = Duration::from_secs(u64::MAX / 2);
        assert_eq!(idle_backoff_interval(huge, 32), Duration::MAX);
    }
}
