//! Shard identity and fleet topology labels.

use std::fmt;

/// Identifies one shard (one monitored machine/socket) within a fleet.
///
/// Ids are allocated by [`crate::Fleet::add_shard`] and never reused, so a
/// scraped snapshot's origin stays unambiguous across shard churn.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ShardId(u32);

impl ShardId {
    /// Builds an id from its raw value (wire decoding and tests; within a
    /// process, get ids from [`crate::Fleet::add_shard`]).
    pub fn from_raw(raw: u32) -> ShardId {
        ShardId(raw)
    }

    /// The raw id value.
    pub fn raw(self) -> u32 {
        self.0
    }
}

impl fmt::Display for ShardId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "shard{}", self.0)
    }
}

/// Where a shard sits in the fleet: a machine name plus a socket index
/// (one `Monitor` watches one socket's PMU).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ShardLabel {
    /// Machine (host) name.
    pub machine: String,
    /// Socket index on that machine.
    pub socket: u32,
}

impl ShardLabel {
    /// Creates a label.
    pub fn new(machine: impl Into<String>, socket: u32) -> ShardLabel {
        ShardLabel {
            machine: machine.into(),
            socket,
        }
    }
}

impl fmt::Display for ShardLabel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/s{}", self.machine, self.socket)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_compact() {
        assert_eq!(ShardId::from_raw(3).to_string(), "shard3");
        assert_eq!(ShardLabel::new("db-7", 1).to_string(), "db-7/s1");
    }
}
