//! Per-shard health: the Healthy → Degraded → Stale → Dead state machine
//! and the staleness-driven variance inflation it feeds into fusion.
//!
//! A networked scrape plane cannot trust its own inputs: a shard that
//! stopped answering may be dead, partitioned, or merely slow, and the
//! aggregator's cached copy of its posterior ages either way. The paper's
//! principle — model your measurement error instead of ignoring it —
//! applies to the scrape plane itself: a stale posterior is *weaker
//! evidence*, so before the precision-weighted product its variance is
//! inflated by age,
//!
//! ```text
//!   σ²_used = σ² · min(max_inflation, 1 + κ · age)
//! ```
//!
//! where `age` counts poll rounds since the shard last proved its state
//! current (a fresh snapshot *or* an `Unchanged` ack — both mean the
//! cached copy is exactly what the shard would serve). Inflation is ≥ 1
//! always, so a degraded fleet's fused posterior can only be *wider* than
//! the all-healthy fusion of the same inputs — staleness never manufactures
//! confidence. Past `dead_after` rounds the shard is [`Dead`]: its cached
//! posterior is dropped from fusion entirely (inflation would keep an
//! arbitrarily old opinion alive forever), but the scraper keeps probing
//! it, and one successful exchange returns it to [`Healthy`].
//!
//! [`Dead`]: HealthState::Dead
//! [`Healthy`]: HealthState::Healthy

use crate::topology::ShardId;
use bayesperf_core::ShimError;

/// Where a shard sits in the staleness state machine. Ordering is by
/// severity (`Healthy < Degraded < Stale < Dead`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum HealthState {
    /// Last poll round reached the shard (snapshot or `Unchanged` ack);
    /// the cached posterior is current. Age 0.
    Healthy,
    /// Recent rounds failed but the cache is younger than
    /// [`HealthPolicy::stale_after`]; contribution fused un-inflated.
    Degraded,
    /// Cache age reached `stale_after`: still fused, but variance-inflated
    /// by age so it widens rather than sharpens the fleet posterior.
    Stale,
    /// Cache age reached [`HealthPolicy::dead_after`]: excluded from
    /// fusion. Still probed; one success returns it to `Healthy`.
    Dead,
}

impl HealthState {
    /// Whether this shard's cached posterior participates in fusion.
    pub fn contributes(self) -> bool {
        self != HealthState::Dead
    }

    /// Stable lowercase name (metric labels, flight-recorder lines).
    pub fn name(self) -> &'static str {
        match self {
            HealthState::Healthy => "healthy",
            HealthState::Degraded => "degraded",
            HealthState::Stale => "stale",
            HealthState::Dead => "dead",
        }
    }
}

/// Thresholds and inflation constants driving the health state machine.
/// One policy serves the whole fleet; per-shard state lives in
/// [`ShardHealth`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HealthPolicy {
    /// Cache age (failed rounds) at which a shard turns [`Stale`]
    /// and inflation starts. Must be ≥ 1.
    ///
    /// [`Stale`]: HealthState::Stale
    pub stale_after: u32,
    /// Cache age at which a shard turns [`Dead`] and leaves fusion.
    /// Must be > `stale_after`.
    ///
    /// [`Dead`]: HealthState::Dead
    pub dead_after: u32,
    /// κ: per-round variance inflation slope for stale shards.
    pub inflation_per_round: f64,
    /// Inflation ceiling, so a nearly-dead shard's contribution stays a
    /// finite (if very vague) Gaussian rather than overflowing.
    pub max_inflation: f64,
}

impl Default for HealthPolicy {
    fn default() -> HealthPolicy {
        HealthPolicy {
            stale_after: 3,
            dead_after: 10,
            inflation_per_round: 0.5,
            max_inflation: 64.0,
        }
    }
}

impl HealthPolicy {
    /// The state a cache age maps to under this policy.
    pub fn state(&self, age: u32) -> HealthState {
        debug_assert!(self.stale_after >= 1 && self.dead_after > self.stale_after);
        if age == 0 {
            HealthState::Healthy
        } else if age < self.stale_after {
            HealthState::Degraded
        } else if age < self.dead_after {
            HealthState::Stale
        } else {
            HealthState::Dead
        }
    }

    /// The variance multiplier for a cache of `age` rounds:
    /// `min(max_inflation, 1 + κ·age)` once stale, `1` before. Always
    /// ≥ 1 and finite, so fusing inflated inputs can only widen the
    /// fused posterior relative to fusing them fresh.
    pub fn inflation(&self, age: u32) -> f64 {
        if age < self.stale_after {
            return 1.0;
        }
        let raw = 1.0 + self.inflation_per_round * f64::from(age);
        raw.min(self.max_inflation).max(1.0)
    }
}

/// How one poll attempt failed, for the per-shard error counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureKind {
    /// Deadline expired (dropped frame, lagging link, slow shard).
    Timeout,
    /// Transport-level failure: connect refused, reset, partition.
    Link,
    /// Bytes arrived but did not decode (corruption, foreign catalog).
    Decode,
}

impl FailureKind {
    /// Classifies a scrape error into a counter bucket.
    pub fn from_error(err: &ShimError) -> FailureKind {
        match err {
            ShimError::ScrapeTimeout => FailureKind::Timeout,
            ShimError::LinkDown { .. } => FailureKind::Link,
            _ => FailureKind::Decode,
        }
    }
}

/// Mutable health state the scraper keeps per endpoint: cache age plus
/// cumulative error counters. The state machine itself is derived —
/// `policy.state(health.age)` — so there is no transition table to drift
/// out of sync with the counters.
#[derive(Debug, Clone, Default)]
pub struct ShardHealth {
    /// Poll rounds since the shard last proved its cache current.
    pub age: u32,
    /// Rounds the scraper has run this endpoint through (attempted or
    /// skipped while cooling down).
    pub rounds: u64,
    /// Successful exchanges (snapshot or `Unchanged`).
    pub successes: u64,
    /// Exchanges that missed their deadline.
    pub timeouts: u64,
    /// Transport failures below the wire layer.
    pub link_errors: u64,
    /// Responses that arrived but failed to decode.
    pub decode_errors: u64,
}

impl ShardHealth {
    /// Records a successful exchange: the cache is provably current, so
    /// age resets — a Dead shard jumps straight back to Healthy.
    pub fn on_success(&mut self) {
        self.rounds += 1;
        self.successes += 1;
        self.age = 0;
    }

    /// Records a failed attempt of kind `kind`; the cache ages one round.
    pub fn on_failure(&mut self, kind: FailureKind) {
        self.rounds += 1;
        self.age = self.age.saturating_add(1);
        match kind {
            FailureKind::Timeout => self.timeouts += 1,
            FailureKind::Link => self.link_errors += 1,
            FailureKind::Decode => self.decode_errors += 1,
        }
    }

    /// Records a round in which the endpoint was not attempted (backoff
    /// cooldown). The cache still ages — staleness is about the data,
    /// not about how hard we tried.
    pub fn on_skipped(&mut self) {
        self.rounds += 1;
        self.age = self.age.saturating_add(1);
    }
}

/// One shard's health as published in a
/// [`FleetSnapshot`](crate::FleetSnapshot): the observable face of the
/// state machine, covering *every* registered endpoint — including Dead
/// or never-heard-from shards that contribute nothing to fusion.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardHealthView {
    /// Which shard.
    pub shard: ShardId,
    /// Its position in the state machine this round.
    pub state: HealthState,
    /// Poll rounds since the shard last proved its cache current.
    pub age: u32,
    /// The variance multiplier its contribution was fused with
    /// (1.0 unless `state` is `Stale`; meaningless when `Dead`).
    pub inflation: f64,
    /// Cumulative deadline misses.
    pub timeouts: u64,
    /// Cumulative transport failures.
    pub link_errors: u64,
    /// Cumulative decode failures.
    pub decode_errors: u64,
}

impl ShardHealthView {
    /// The view of a shard that is current as of this round — the
    /// in-process fleet path, where every scrape trivially succeeds.
    pub fn healthy(shard: ShardId) -> ShardHealthView {
        ShardHealthView {
            shard,
            state: HealthState::Healthy,
            age: 0,
            inflation: 1.0,
            timeouts: 0,
            link_errors: 0,
            decode_errors: 0,
        }
    }

    /// Builds the view of `health` under `policy`.
    pub fn observe(shard: ShardId, health: &ShardHealth, policy: &HealthPolicy) -> ShardHealthView {
        ShardHealthView {
            shard,
            state: policy.state(health.age),
            age: health.age,
            inflation: policy.inflation(health.age),
            timeouts: health.timeouts,
            link_errors: health.link_errors,
            decode_errors: health.decode_errors,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ages_map_to_states_in_severity_order() {
        let p = HealthPolicy::default();
        assert_eq!(p.state(0), HealthState::Healthy);
        assert_eq!(p.state(1), HealthState::Degraded);
        assert_eq!(p.state(2), HealthState::Degraded);
        assert_eq!(p.state(3), HealthState::Stale);
        assert_eq!(p.state(9), HealthState::Stale);
        assert_eq!(p.state(10), HealthState::Dead);
        assert_eq!(p.state(u32::MAX), HealthState::Dead);
        assert!(HealthState::Healthy < HealthState::Degraded);
        assert!(HealthState::Stale < HealthState::Dead);
        assert!(HealthState::Stale.contributes());
        assert!(!HealthState::Dead.contributes());
    }

    #[test]
    fn inflation_is_one_before_stale_then_grows_capped() {
        let p = HealthPolicy::default();
        assert_eq!(p.inflation(0), 1.0);
        assert_eq!(p.inflation(2), 1.0);
        assert!((p.inflation(3) - 2.5).abs() < 1e-12); // 1 + 0.5·3
        assert!(p.inflation(4) > p.inflation(3), "monotone in age");
        assert_eq!(p.inflation(1_000_000), p.max_inflation);
        // Never below 1 even with a hostile (zero-slope) policy.
        let flat = HealthPolicy {
            inflation_per_round: 0.0,
            ..p
        };
        assert_eq!(flat.inflation(5), 1.0);
    }

    #[test]
    fn success_resets_age_from_anywhere() {
        let mut h = ShardHealth::default();
        for _ in 0..12 {
            h.on_failure(FailureKind::Timeout);
        }
        let p = HealthPolicy::default();
        assert_eq!(p.state(h.age), HealthState::Dead);
        h.on_success();
        assert_eq!(p.state(h.age), HealthState::Healthy);
        assert_eq!(h.timeouts, 12);
        assert_eq!(h.successes, 1);
        assert_eq!(h.rounds, 13);
    }

    #[test]
    fn skipped_rounds_still_age_the_cache() {
        let mut h = ShardHealth::default();
        h.on_failure(FailureKind::Link);
        h.on_skipped();
        h.on_skipped();
        assert_eq!(h.age, 3);
        assert_eq!(h.link_errors, 1);
        assert_eq!(h.rounds, 3);
    }

    #[test]
    fn errors_classify_into_counter_buckets() {
        assert_eq!(
            FailureKind::from_error(&ShimError::ScrapeTimeout),
            FailureKind::Timeout
        );
        assert_eq!(
            FailureKind::from_error(&ShimError::LinkDown { what: "reset" }),
            FailureKind::Link
        );
        assert_eq!(
            FailureKind::from_error(&ShimError::WireMalformed { what: "x" }),
            FailureKind::Decode
        );
        assert_eq!(
            FailureKind::from_error(&ShimError::WireTruncated { offset: 3 }),
            FailureKind::Decode
        );
    }

    #[test]
    fn observe_builds_the_published_view() {
        let mut h = ShardHealth::default();
        for _ in 0..4 {
            h.on_failure(FailureKind::Timeout);
        }
        let p = HealthPolicy::default();
        let v = ShardHealthView::observe(ShardId::from_raw(7), &h, &p);
        assert_eq!(v.state, HealthState::Stale);
        assert_eq!(v.age, 4);
        assert!((v.inflation - 3.0).abs() < 1e-12);
        assert_eq!(v.timeouts, 4);
        let fresh = ShardHealthView::healthy(ShardId::from_raw(1));
        assert_eq!(fresh.state, HealthState::Healthy);
        assert_eq!(fresh.inflation, 1.0);
    }
}
