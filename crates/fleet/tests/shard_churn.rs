//! Snapshot publication under shard churn: shards are dropped and
//! re-created while fleet readers poll concurrently. Readers must never
//! observe a torn snapshot (mixed generations / wrong-length vectors),
//! every removed monitor must shut down (no leaked ring or thread), and
//! publication must never wedge on a leaked reader slot — the aggregator
//! spin-waits on slot reader counts, so this test *completing* under
//! continuous churn is itself the no-leak proof.

use bayesperf_core::corrector::CorrectorConfig;
use bayesperf_core::ShimError;
use bayesperf_events::{Arch, Catalog, Semantic};
use bayesperf_fleet::{Fleet, FleetConfig, ShardLabel};
use bayesperf_simcpu::{pack_round_robin, MultiplexRun, Pmu, PmuConfig, ShardProfile};
use bayesperf_workloads::kmeans;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::SeqCst};

fn recorded_run(cat: &Catalog, n_windows: usize, seed: u64) -> MultiplexRun {
    let profile = ShardProfile::derive(7, seed as u32);
    let mut truth = bayesperf_simcpu::CorrelatedTruth::new(kmeans().instantiate(cat, 0), profile);
    let pmu = Pmu::new(cat, profile.pmu_config(&PmuConfig::for_catalog(cat)));
    let events = vec![
        cat.require(Semantic::L1dMisses),
        cat.require(Semantic::LlcHits),
        cat.require(Semantic::LlcMisses),
    ];
    let schedule = pack_round_robin(cat, &events).expect("schedule fits");
    pmu.run_multiplexed(&mut truth, &schedule, n_windows)
}

#[test]
fn shard_churn_under_concurrent_fleet_readers() {
    let cat = Catalog::new(Arch::X86SkyLake);
    let n_events = cat.len();
    let run0 = recorded_run(&cat, 6, 0);
    let cfg = CorrectorConfig::for_run(&run0);

    let mut fleet = Fleet::new(&cat, FleetConfig::new(cfg)).expect("spawn fleet");
    let first = fleet
        .add_shard(ShardLabel::new("m0", 0))
        .expect("spawn shard");
    for w in &run0.windows {
        for s in &w.samples {
            fleet.push_sample(first, *s).expect("room");
        }
    }
    fleet.flush().expect("alive");

    let session = fleet.session().open().expect("open");
    let stop = AtomicBool::new(false);
    let reads = AtomicU64::new(0);

    std::thread::scope(|s| {
        for _ in 0..3 {
            let session = session.clone();
            let stop = &stop;
            let reads = &reads;
            s.spawn(move || {
                let mut last_generation = 0u64;
                while !stop.load(SeqCst) {
                    match session.snapshot() {
                        Ok(snap) => {
                            // Internal consistency: a torn snapshot would
                            // break one of these invariants.
                            assert_eq!(snap.fused.len(), n_events);
                            assert_eq!(snap.shards.len(), snap.per_shard.len());
                            assert!(!snap.shards.is_empty());
                            for p in &snap.per_shard {
                                assert_eq!(p.len(), n_events);
                            }
                            for g in &snap.fused {
                                assert!(g.var > 0.0 && g.mean.is_finite());
                            }
                            assert!(
                                snap.generation >= last_generation,
                                "generation went backwards: {} < {}",
                                snap.generation,
                                last_generation
                            );
                            last_generation = snap.generation;
                            reads.fetch_add(1, SeqCst);
                        }
                        Err(ShimError::NoShards) => {}
                        Err(e) => panic!("reader hit {e}"),
                    }
                    // Group reads exercise the guard-deref path too.
                    if let Ok(group) = session.read_group() {
                        assert_eq!(group.readings.len(), n_events);
                    }
                    std::thread::yield_now();
                }
            });
        }

        // Churn: drop and re-create shards while the readers poll. Each
        // round removes the oldest shard, adds a fresh one with its own
        // heterogeneous stream, and syncs (forcing scrape passes that
        // overlap the reader traffic).
        let mut oldest = first;
        for round in 1..5u64 {
            let run = recorded_run(&cat, 6, round);
            let id = fleet
                .add_shard(ShardLabel::new(format!("m{round}"), 0))
                .expect("spawn shard");
            for w in &run.windows {
                for sample in &w.samples {
                    fleet.push_sample(id, *sample).expect("room");
                }
            }
            fleet.flush().expect("alive");
            fleet.remove_shard(oldest).expect("member");
            fleet.refresh().expect("alive");
            oldest = id;
            // The removed shard must be gone from both the routing view
            // and the next published snapshot.
            assert!(matches!(
                fleet.push_sample(first, run.windows[0].samples[0]),
                Err(ShimError::UnknownShard { .. })
            ));
            let snap = fleet.snapshot().expect("published");
            assert!(
                snap.shards.iter().all(|s| s.shard != first),
                "round {round}: removed shard still contributes"
            );
        }
        stop.store(true, SeqCst);
    });

    assert!(reads.load(SeqCst) > 0, "readers observed live snapshots");
    assert!(fleet.remove_shard(first).is_err(), "ids are never reused");

    // Close while sessions still exist: reads turn into typed errors and
    // subscriber streams end rather than hanging.
    let mut updates = session.subscribe();
    fleet.close();
    assert_eq!(
        session.read(cat.require(Semantic::L1dMisses)),
        Err(ShimError::SessionClosed)
    );
    // Drain anything that raced in before close; the stream must then
    // end with a typed error, not block or stay open.
    while let Ok(Some(_)) = updates.try_next() {}
    assert!(matches!(updates.try_next(), Err(ShimError::SessionClosed)));
}
