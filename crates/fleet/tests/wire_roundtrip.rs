//! Property tests for the wire codec: encode→decode is identity for
//! arbitrary snapshots, and decoding truncated/corrupted buffers returns
//! typed errors — never panics.

use bayesperf_core::ShimError;
use bayesperf_fleet::wire::{
    decode_shard, decode_summary, encode_shard, encode_summary, FleetSummary, ShardSnapshot,
};
use bayesperf_fleet::{ShardId, ShardLabel, ShardStatus};
use bayesperf_inference::Gaussian;
use proptest::prelude::*;
use proptest::TestRng;
use rand::Rng;

/// Draws an arbitrary-but-valid shard snapshot: means across sign and
/// magnitude, variances across 24 orders of magnitude, ids/windows over
/// their full ranges, labels of mixed length (including empty).
fn arbitrary_snapshot(rng: &mut TestRng) -> ShardSnapshot {
    let n = rng.gen_range(0usize..48);
    let posteriors = (0..n)
        .map(|_| {
            let mean = rng.gen_range(-1.0e12..1.0e12);
            let var = 10f64.powf(rng.gen_range(-12.0..12.0));
            Gaussian::new(mean, var)
        })
        .collect();
    let label_len = rng.gen_range(0usize..24);
    let machine: String = (0..label_len)
        .map(|_| char::from(rng.gen_range(b'a'..b'z' + 1)))
        .collect();
    let n_src = rng.gen_range(0usize..6);
    let late_by_source = (0..n_src)
        .map(|_| rng.gen::<u64>() >> rng.gen_range(0..64))
        .collect();
    ShardSnapshot {
        shard: ShardId::from_raw(rng.gen::<u32>()),
        label: ShardLabel::new(machine, rng.gen::<u32>()),
        window: rng.gen::<u32>(),
        chunk: rng.gen::<u64>(),
        late_by_source,
        posteriors,
    }
}

fn bits_equal(a: &Gaussian, b: &Gaussian) -> bool {
    a.mean.to_bits() == b.mean.to_bits() && a.var.to_bits() == b.var.to_bits()
}

#[test]
fn shard_roundtrip_is_identity_for_arbitrary_snapshots() {
    proptest::run_cases("shard_roundtrip", |rng| {
        let snap = arbitrary_snapshot(rng);
        let mut buf = Vec::new();
        encode_shard(&snap, &mut buf);
        let (back, used) = decode_shard(&buf).expect("decode own encoding");
        prop_assert_eq!(used, buf.len());
        prop_assert_eq!(&back.shard, &snap.shard);
        prop_assert_eq!(&back.label, &snap.label);
        prop_assert_eq!(back.window, snap.window);
        prop_assert_eq!(back.chunk, snap.chunk);
        prop_assert_eq!(back.posteriors.len(), snap.posteriors.len());
        for (a, b) in back.posteriors.iter().zip(&snap.posteriors) {
            prop_assert!(bits_equal(a, b), "moments must round-trip bit-exact");
        }
    });
}

#[test]
fn summary_roundtrip_is_identity_for_arbitrary_summaries() {
    proptest::run_cases("summary_roundtrip", |rng| {
        let n_shards = rng.gen_range(1usize..9);
        let shards: Vec<ShardStatus> = (0..n_shards)
            .map(|_| arbitrary_snapshot(rng).status())
            .collect();
        let fused = arbitrary_snapshot(rng).posteriors;
        let summary = FleetSummary {
            generation: rng.gen::<u64>(),
            shards,
            fused,
        };
        let mut buf = Vec::new();
        encode_summary(&summary, &mut buf);
        let (back, used) = decode_summary(&buf).expect("decode own encoding");
        prop_assert_eq!(used, buf.len());
        prop_assert_eq!(back.generation, summary.generation);
        prop_assert_eq!(&back.shards, &summary.shards);
        for (a, b) in back.fused.iter().zip(&summary.fused) {
            prop_assert!(bits_equal(a, b));
        }
    });
}

#[test]
fn truncated_buffers_return_typed_errors_never_panic() {
    proptest::run_cases("truncation", |rng| {
        let snap = arbitrary_snapshot(rng);
        let mut buf = Vec::new();
        encode_shard(&snap, &mut buf);
        // Every strict prefix must fail with a typed error (truncation,
        // by construction — nothing semantic can fail on a valid prefix).
        let cut = rng.gen_range(0usize..buf.len());
        match decode_shard(&buf[..cut]) {
            Err(ShimError::WireTruncated { offset }) => prop_assert!(offset <= cut),
            other => panic!("prefix of {cut} bytes: expected truncation, got {other:?}"),
        }
    });
}

#[test]
fn corrupted_buffers_never_panic() {
    proptest::run_cases("corruption", |rng| {
        let snap = arbitrary_snapshot(rng);
        let mut buf = Vec::new();
        encode_shard(&snap, &mut buf);
        // Flip 1..8 random bytes anywhere (header, varints, moments):
        // the decoder may accept a different-but-valid record or reject
        // with any typed error, but must never panic or loop.
        for _ in 0..rng.gen_range(1usize..8) {
            let i = rng.gen_range(0usize..buf.len());
            buf[i] ^= rng.gen::<u8>();
        }
        match decode_shard(&buf) {
            Ok((back, used)) => {
                prop_assert!(used <= buf.len());
                for g in &back.posteriors {
                    prop_assert!(g.var > 0.0 && g.var.is_finite() && g.mean.is_finite());
                }
            }
            Err(
                ShimError::WireTruncated { .. }
                | ShimError::WireVersion { .. }
                | ShimError::WireMalformed { .. },
            ) => {}
            Err(other) => panic!("unexpected error class: {other:?}"),
        }
    });
}

#[test]
fn adversarial_frame_prefixes_never_allocate_unboundedly_or_panic() {
    use bayesperf_fleet::wire::{decode_frame, encode_frame, frame_len, MAX_FRAME_LEN};
    proptest::run_cases("hostile_frames", |rng| {
        // Arbitrary 32-bit length prefixes, biased toward the hostile
        // range: anything above MAX_FRAME_LEN must be rejected from the
        // 4 prefix bytes alone — before any payload allocation.
        let claimed: u32 = if rng.gen_bool(0.5) {
            rng.gen_range(MAX_FRAME_LEN as u32 + 1..u32::MAX)
        } else {
            rng.gen::<u32>()
        };
        let prefix = claimed.to_le_bytes();
        match frame_len(prefix) {
            Ok(len) => prop_assert!(len <= MAX_FRAME_LEN, "bound enforced: {len}"),
            Err(ShimError::WireMalformed { .. }) => {
                prop_assert!(claimed as usize > MAX_FRAME_LEN)
            }
            Err(other) => panic!("unexpected error class: {other:?}"),
        }
        // A framed buffer whose prefix lies about a huge payload: the
        // decoder rejects (oversized) or reports truncation (undersized
        // actual bytes) — it never tries to read `claimed` bytes.
        let garbage_len = rng.gen_range(0usize..64);
        let mut framed = prefix.to_vec();
        framed.extend((0..garbage_len).map(|_| rng.gen::<u8>()));
        match decode_frame(&framed) {
            Ok((payload, used)) => {
                prop_assert!(payload.len() as u32 == claimed);
                prop_assert!(used <= framed.len());
            }
            Err(ShimError::WireMalformed { .. }) => {
                prop_assert!(claimed as usize > MAX_FRAME_LEN)
            }
            Err(ShimError::WireTruncated { .. }) => {
                prop_assert!((claimed as usize) > garbage_len)
            }
            Err(other) => panic!("unexpected error class: {other:?}"),
        }
        // Symmetry: the encoder refuses payloads it could never frame.
        // (Allocating MAX_FRAME_LEN+1 bytes once per case would dominate
        // the test; an empty slice with a forged length is impossible
        // through the public API, so just pin the boundary.)
        let mut out = Vec::new();
        prop_assert!(encode_frame(&[], &mut out).is_ok());
    });
}

#[test]
fn scrape_request_roundtrip_and_truncation() {
    use bayesperf_fleet::wire::{decode_request, encode_request, ScrapeRequest};
    proptest::run_cases("scrape_request", |rng| {
        let req = ScrapeRequest {
            last_window: rng.gen::<u32>(),
            last_chunk: rng.gen::<u64>(),
        };
        let mut buf = Vec::new();
        encode_request(&req, &mut buf);
        let (back, used) = decode_request(&buf).expect("decode own encoding");
        prop_assert_eq!(back, req);
        prop_assert_eq!(used, buf.len());
        let cut = rng.gen_range(0usize..buf.len());
        prop_assert!(matches!(
            decode_request(&buf[..cut]),
            Err(ShimError::WireTruncated { .. })
        ));
    });
}
