//! The scrape plane under fire: seeded lossy/laggy/partitioned links,
//! shard churn, death and recovery — the aggregator must keep publishing
//! a finite, never-oversharpened fused posterior through all of it.
//!
//! The 100+ shard soak runs a trimmed round count by default; set
//! `FAULT_SOAK=1` (the CI `fault-soak` leg) for the long version.

use bayesperf_core::{ShimError, SnapshotView};
use bayesperf_fleet::net::backoff_rounds;
use bayesperf_fleet::{
    fuse_gaussians, FleetScraper, HealthState, ScrapeConfig, ScrapeResponder, ShardId, ShardLabel,
    ShardTransport, SimTransport, SnapshotSource,
};
use bayesperf_inference::{EpRunStats, Gaussian};
use bayesperf_simcpu::{LinkProfile, LinkState};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A shard stand-in whose snapshot is a pure function of a version
/// counter: bump it and the "shard" has corrected another chunk.
struct SynthSource {
    shard: u32,
    version: AtomicU64,
    events: usize,
}

impl SynthSource {
    fn new(shard: u32, events: usize) -> Arc<SynthSource> {
        Arc::new(SynthSource {
            shard,
            version: AtomicU64::new(1),
            events,
        })
    }

    fn bump(&self) {
        self.version.fetch_add(1, Ordering::Relaxed);
    }

    fn posteriors(&self, v: u64) -> Vec<Gaussian> {
        (0..self.events)
            .map(|e| {
                Gaussian::new(
                    50.0 + f64::from(self.shard) * 0.1 + e as f64 + v as f64 * 0.01,
                    0.5 + (f64::from(self.shard) % 7.0) * 0.3 + e as f64 * 0.2,
                )
            })
            .collect()
    }
}

impl SnapshotSource for SynthSource {
    fn source_stamp(&self) -> Result<(u32, u64), ShimError> {
        let v = self.version.load(Ordering::Relaxed);
        Ok((v as u32 * 6, v))
    }

    fn source_view(&self) -> Result<SnapshotView, ShimError> {
        let v = self.version.load(Ordering::Relaxed);
        Ok(SnapshotView {
            window: v as u32 * 6,
            chunk: v,
            stats: EpRunStats::default(),
            late_by_source: Vec::new(),
            posteriors: self.posteriors(v),
        })
    }
}

fn responder(
    shard: u32,
    events: usize,
) -> (Arc<SynthSource>, Arc<ScrapeResponder<Arc<SynthSource>>>) {
    let source = SynthSource::new(shard, events);
    let r = ScrapeResponder::new(
        ShardId::from_raw(shard),
        ShardLabel::new(format!("m{shard}"), shard % 2),
        Arc::clone(&source),
    );
    (source, Arc::new(r))
}

/// A transport that fails on demand — the deterministic death/recovery
/// switch (a partition whose schedule the test controls exactly).
struct SwitchedTransport<T> {
    inner: T,
    down: Arc<AtomicBool>,
}

impl<T: ShardTransport> ShardTransport for SwitchedTransport<T> {
    fn exchange(&mut self, request: &[u8], deadline: Duration) -> Result<Vec<u8>, ShimError> {
        if self.down.load(Ordering::Relaxed) {
            return Err(ShimError::LinkDown {
                what: "link partitioned",
            });
        }
        self.inner.exchange(request, deadline)
    }
}

const EVENTS: usize = 3;
const DEADLINE: Duration = Duration::from_millis(5);

/// The fused posterior must never be sharper than the all-healthy fusion
/// of the same contributing subset: inflation only widens.
fn assert_never_oversharpened(snap: &bayesperf_fleet::FleetSnapshot) {
    for e in 0..snap.fused.len() {
        let column: Vec<Gaussian> = snap.per_shard.iter().map(|p| p[e]).collect();
        let all_healthy = fuse_gaussians(&column).expect("contributors non-empty");
        assert!(
            snap.fused[e].var >= all_healthy.var * (1.0 - 1e-12),
            "event {e}: fused var {} sharper than all-healthy {}",
            snap.fused[e].var,
            all_healthy.var
        );
        assert!(snap.fused[e].var.is_finite() && snap.fused[e].var > 0.0);
        assert!(snap.fused[e].mean.is_finite());
    }
}

#[test]
fn clean_fleet_scrape_matches_direct_fusion() {
    let mut scraper = FleetScraper::new(EVENTS, ScrapeConfig::default());
    let mut sources = Vec::new();
    for shard in 0..8u32 {
        let (source, r) = responder(shard, EVENTS);
        sources.push(source);
        scraper.add_endpoint(
            ShardId::from_raw(shard),
            ShardLabel::new(format!("m{shard}"), shard % 2),
            Box::new(SimTransport::new(
                r,
                LinkState::new(LinkProfile::clean(u64::from(shard))),
            )),
        );
    }
    let report = scraper.poll_round();
    assert!(report.published);
    assert_eq!(report.contributors, 8);
    let reader = scraper.reader();
    let snap = reader.read().expect("published");
    // The networked fusion must equal fusing the sources directly.
    for e in 0..EVENTS {
        let direct: Vec<Gaussian> = sources.iter().map(|s| s.posteriors(1)[e]).collect();
        let expected = fuse_gaussians(&direct).unwrap();
        assert_eq!(snap.fused[e].mean.to_bits(), expected.mean.to_bits());
        assert_eq!(snap.fused[e].var.to_bits(), expected.var.to_bits());
    }
    assert!(snap
        .health
        .iter()
        .all(|h| h.state == HealthState::Healthy && h.inflation == 1.0));
}

#[test]
fn lossy_hundred_shard_fleet_keeps_publishing() {
    let soak = std::env::var("FAULT_SOAK").is_ok();
    let shards: u32 = 120;
    let rounds: u64 = if soak { 500 } else { 80 };
    let mut config = ScrapeConfig {
        deadline: DEADLINE,
        ..ScrapeConfig::default()
    };
    config.jitter_seed = 0xFEED_F00D;
    let mut scraper = FleetScraper::new(EVENTS, config);
    let template = LinkProfile {
        // ≥10% frame drop plus latency spread wide enough that a 5ms
        // deadline occasionally expires: both timeout paths exercised.
        drop_prob: 0.12,
        latency_us: 2_000.0,
        latency_jitter_us: 3_500.0,
        ..LinkProfile::lossy(0xD15EA5E, 0.12)
    };
    let mut sources = Vec::new();
    for shard in 0..shards {
        let (source, r) = responder(shard, EVENTS);
        sources.push(source);
        scraper.add_endpoint(
            ShardId::from_raw(shard),
            ShardLabel::new(format!("m{shard}"), shard % 2),
            Box::new(SimTransport::new(r, LinkState::new(template.derive(shard)))),
        );
    }
    let reader = scraper.reader();
    let mut published_rounds = 0u64;
    let mut contributor_ages = Vec::new();
    let mut last_generation = 0u64;
    for round in 0..rounds {
        // A third of the fleet progresses every round: steady churn of
        // fresh snapshots amid the faults.
        for source in sources.iter().skip((round % 3) as usize).step_by(3) {
            source.bump();
        }
        let report = scraper.poll_round();
        if report.published {
            published_rounds += 1;
        }
        let snap = reader.read().expect("a lossy fleet must still publish");
        assert!(snap.generation >= last_generation, "generation monotone");
        last_generation = snap.generation;
        assert_never_oversharpened(&snap);
        // Health rows cover the whole fleet; contributors cover the
        // non-Dead subset.
        assert_eq!(snap.health.len(), shards as usize);
        assert!(snap.shards.len() <= shards as usize);
        for h in &snap.health {
            if h.state.contributes() {
                contributor_ages.push(h.age);
            }
        }
    }
    assert_eq!(
        published_rounds, rounds,
        "with 120 shards at 12% drop, every round must find contributors"
    );
    // Staleness p99 over all (round, contributor) observations: the
    // retry + backoff machinery must keep ages tightly bounded.
    contributor_ages.sort_unstable();
    let p99 = contributor_ages[(contributor_ages.len() * 99 / 100).min(contributor_ages.len() - 1)];
    assert!(p99 <= 5, "contributor staleness p99 {p99} rounds");
}

#[test]
fn dead_shards_are_excluded_and_recover_as_healthy() {
    let config = ScrapeConfig {
        deadline: DEADLINE,
        ..ScrapeConfig::default()
    };
    let policy = config.health;
    let mut scraper = FleetScraper::new(EVENTS, config.clone());
    let down = Arc::new(AtomicBool::new(false));
    for shard in 0..3u32 {
        let (_, r) = responder(shard, EVENTS);
        let sim = SimTransport::new(r, LinkState::new(LinkProfile::clean(u64::from(shard))));
        if shard == 2 {
            scraper.add_endpoint(
                ShardId::from_raw(shard),
                ShardLabel::new("flaky".to_string(), 0),
                Box::new(SwitchedTransport {
                    inner: sim,
                    down: Arc::clone(&down),
                }),
            );
        } else {
            scraper.add_endpoint(
                ShardId::from_raw(shard),
                ShardLabel::new(format!("m{shard}"), 0),
                Box::new(sim),
            );
        }
    }
    let reader = scraper.reader();
    let flaky = ShardId::from_raw(2);
    scraper.poll_round();
    assert_eq!(
        reader.read().unwrap().shard_health(flaky).unwrap().state,
        HealthState::Healthy
    );
    // Partition the flaky shard until its cache ages past dead_after.
    down.store(true, Ordering::Relaxed);
    let mut saw_stale = false;
    for _ in 0..policy.dead_after + 2 {
        scraper.poll_round();
        let snap = reader.read().unwrap();
        let h = snap.shard_health(flaky).unwrap().clone();
        if h.state == HealthState::Stale {
            saw_stale = true;
            // Stale: still a contributor, inflated.
            assert!(snap.shards.iter().any(|s| s.shard == flaky));
            assert!(h.inflation > 1.0);
        }
        assert_never_oversharpened(&snap);
    }
    {
        // Scoped: the guard pins a cell slot; it must drop before the
        // scraper publishes again below.
        let snap = reader.read().unwrap();
        let h = snap.shard_health(flaky).unwrap();
        assert!(saw_stale, "must pass through Stale on the way down");
        assert_eq!(h.state, HealthState::Dead);
        assert!(h.link_errors > 0);
        // Dead: observable in health, absent from fusion.
        assert!(!snap.shards.iter().any(|s| s.shard == flaky));
        assert_eq!(snap.shards.len(), 2);
    }
    // Heal the link: within the backoff cap the shard must be probed
    // again and jump straight back to Healthy (and back into fusion).
    down.store(false, Ordering::Relaxed);
    let mut recovered_in = None;
    for round in 1..=u64::from(config.backoff_cap_rounds) + 2 {
        scraper.poll_round();
        let snap = reader.read().unwrap();
        if snap.shard_health(flaky).unwrap().state == HealthState::Healthy {
            recovered_in = Some(round);
            assert!(snap.shards.iter().any(|s| s.shard == flaky));
            break;
        }
    }
    let rounds = recovered_in.expect("dead shard must recover once the link heals");
    assert!(
        rounds <= u64::from(config.backoff_cap_rounds) + 1,
        "recovery took {rounds} rounds"
    );
}

#[test]
fn churn_under_faults_never_shows_torn_or_regressing_snapshots() {
    let config = ScrapeConfig {
        deadline: DEADLINE,
        ..ScrapeConfig::default()
    };
    let mut scraper = FleetScraper::new(EVENTS, config);
    let template = LinkProfile {
        latency_us: 1_500.0,
        latency_jitter_us: 2_500.0,
        ..LinkProfile::lossy(0xC0FFEE, 0.15)
    };
    let add = |scraper: &mut FleetScraper, shard: u32| {
        let (source, r) = responder(shard, EVENTS);
        scraper.add_endpoint(
            ShardId::from_raw(shard),
            ShardLabel::new(format!("m{shard}"), shard % 2),
            Box::new(SimTransport::new(r, LinkState::new(template.derive(shard)))),
        );
        source
    };
    let mut sources = Vec::new();
    for shard in 0..12u32 {
        sources.push((shard, add(&mut scraper, shard)));
    }
    let reader = scraper.reader();
    let stop = Arc::new(AtomicBool::new(false));
    // Concurrent readers hammer the published cell during churn: every
    // observed snapshot must be internally consistent (never torn) and
    // generations must never run backwards per reader.
    let observers: Vec<_> = (0..3)
        .map(|_| {
            let reader = reader.clone();
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut last_generation = 0u64;
                let mut observed = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    if let Some(snap) = reader.read() {
                        assert!(snap.generation >= last_generation, "generation regressed");
                        last_generation = snap.generation;
                        assert_eq!(snap.shards.len(), snap.per_shard.len(), "torn snapshot");
                        assert!(snap.health.windows(2).all(|w| w[0].shard < w[1].shard));
                        for g in &snap.fused {
                            assert!(g.var.is_finite() && g.var > 0.0 && g.mean.is_finite());
                        }
                        observed += 1;
                    }
                    std::thread::yield_now();
                }
                observed
            })
        })
        .collect();
    let mut next_shard = 12u32;
    for round in 0..60u64 {
        for (_, source) in sources.iter().skip((round % 2) as usize).step_by(2) {
            source.bump();
        }
        // Churn every few rounds: drop the oldest shard, add a new one.
        if round % 5 == 4 {
            let (oldest, _) = sources.remove(0);
            scraper
                .remove_endpoint(ShardId::from_raw(oldest))
                .expect("oldest endpoint registered");
            sources.push((next_shard, add(&mut scraper, next_shard)));
            next_shard += 1;
        }
        scraper.poll_round();
        let snap = reader.read().expect("published from round one");
        assert_never_oversharpened(&snap);
        // Removed shards leave the health rows entirely.
        assert_eq!(snap.health.len(), scraper.endpoints());
    }
    stop.store(true, Ordering::Relaxed);
    for handle in observers {
        let observed = handle.join().expect("observer must not panic");
        assert!(observed > 0, "observers must actually see snapshots");
    }
    assert_eq!(scraper.endpoints(), 12);
}

#[test]
fn backoff_caps_keep_dead_endpoints_probed() {
    // The schedule invariant behind recovery: however long an endpoint
    // has been failing, consecutive skips never exceed the cap.
    let mut rng = 0xABCDu64;
    for fails in 1..1000u32 {
        assert!(backoff_rounds(fails, 8, &mut rng) <= 8);
    }
}

/// Corrupts the first byte of every response — a wire-magic hit, so
/// every exchange is a guaranteed decode failure. (The probabilistic
/// whole-buffer corruption of [`LinkProfile`] runs in the lossy soak; a
/// flipped *moment* byte can still decode to a different-but-valid
/// record, which is exactly why this test pins the header instead.)
struct HeaderCorruptor<T> {
    inner: T,
}

impl<T: ShardTransport> ShardTransport for HeaderCorruptor<T> {
    fn exchange(&mut self, request: &[u8], deadline: Duration) -> Result<Vec<u8>, ShimError> {
        let mut out = self.inner.exchange(request, deadline)?;
        if let Some(byte) = out.first_mut() {
            *byte ^= 0xFF;
        }
        Ok(out)
    }
}

#[test]
fn corrupted_frames_age_health_but_never_panic() {
    // A link whose every response fails to decode: the scraper counts
    // decode errors and the endpoint decays toward Dead — without ever
    // tearing down the process or publishing garbage.
    let config = ScrapeConfig {
        deadline: DEADLINE,
        ..ScrapeConfig::default()
    };
    let policy = config.health;
    let mut scraper = FleetScraper::new(EVENTS, config.clone());
    let (_, r) = responder(0, EVENTS);
    scraper.add_endpoint(
        ShardId::from_raw(0),
        ShardLabel::new("corrupt".to_string(), 0),
        Box::new(HeaderCorruptor {
            inner: SimTransport::new(r, LinkState::new(LinkProfile::clean(0x0DDB))),
        }),
    );
    for _ in 0..policy.dead_after + 2 {
        scraper.poll_round();
    }
    let reader = scraper.reader();
    // Nothing ever decoded, so nothing was ever published — and the
    // process is still here.
    assert!(reader.read().is_none());
    // The health machinery classified the failures as decode errors.
    // (The view lives only in published snapshots, so pair the corrupt
    // endpoint with a healthy shard that keeps publication alive.)
    let mut scraper = FleetScraper::new(EVENTS, config);
    let (_, healthy) = responder(1, EVENTS);
    scraper.add_endpoint(
        ShardId::from_raw(1),
        ShardLabel::new("m1".to_string(), 0),
        Box::new(SimTransport::new(
            healthy,
            LinkState::new(LinkProfile::clean(4)),
        )),
    );
    let (_, corrupt) = responder(0, EVENTS);
    scraper.add_endpoint(
        ShardId::from_raw(0),
        ShardLabel::new("corrupt".to_string(), 0),
        Box::new(HeaderCorruptor {
            inner: SimTransport::new(corrupt, LinkState::new(LinkProfile::clean(0x0DDB))),
        }),
    );
    for _ in 0..4 {
        scraper.poll_round();
    }
    let reader = scraper.reader();
    let snap = reader.read().expect("healthy shard keeps publishing");
    let h = snap.shard_health(ShardId::from_raw(0)).unwrap();
    assert!(
        h.decode_errors > 0,
        "corruption must surface as decode errors"
    );
    assert!(h.age > 0);
    // Only the healthy shard contributes.
    assert_eq!(snap.shards.len(), 1);
    assert_eq!(snap.shards[0].shard, ShardId::from_raw(1));
}

#[test]
fn tcp_and_unix_servers_serve_real_scrapes() {
    use bayesperf_fleet::{ScrapeServer, TcpTransport, UnixTransport};
    let sock_deadline = Duration::from_secs(2);
    // TCP leg.
    let (tcp_source, _) = {
        let source = SynthSource::new(0, EVENTS);
        (Arc::clone(&source), ())
    };
    let tcp_server = ScrapeServer::bind_tcp(
        "127.0.0.1:0",
        ScrapeResponder::new(
            ShardId::from_raw(0),
            ShardLabel::new("tcp0", 0),
            Arc::clone(&tcp_source),
        ),
    )
    .expect("bind tcp");
    let addr = tcp_server.local_addr().expect("tcp server has an address");
    // Unix-domain leg.
    let unix_source = SynthSource::new(1, EVENTS);
    let path = std::env::temp_dir().join(format!("bayesperf-scrape-{}.sock", std::process::id()));
    let unix_server = ScrapeServer::bind_unix(
        &path,
        ScrapeResponder::new(
            ShardId::from_raw(1),
            ShardLabel::new("uds1", 0),
            Arc::clone(&unix_source),
        ),
    )
    .expect("bind unix");
    let mut scraper = FleetScraper::new(
        EVENTS,
        ScrapeConfig {
            deadline: sock_deadline,
            ..ScrapeConfig::default()
        },
    );
    scraper.add_endpoint(
        ShardId::from_raw(0),
        ShardLabel::new("tcp0", 0),
        Box::new(TcpTransport::new(addr)),
    );
    scraper.add_endpoint(
        ShardId::from_raw(1),
        ShardLabel::new("uds1", 0),
        Box::new(UnixTransport::new(&path)),
    );
    let reader = scraper.reader();
    let first = scraper.poll_round();
    assert_eq!(first.contributors, 2, "both socket flavors must scrape");
    assert_eq!(first.full_snapshots, 2);
    {
        let snap = reader.read().expect("published over real sockets");
        assert_eq!(snap.shards.len(), 2);
        assert_never_oversharpened(&snap);
    }
    // Steady state over sockets: unchanged acks, no re-transfer.
    let second = scraper.poll_round();
    assert_eq!(second.unchanged, 2);
    assert_eq!(second.full_snapshots, 0);
    assert!(second.bytes_received < first.bytes_received / 2);
    // Progress propagates.
    tcp_source.bump();
    let third = scraper.poll_round();
    assert_eq!(third.full_snapshots, 1);
    assert_eq!(third.unchanged, 1);
    {
        let snap = reader.read().unwrap();
        let tcp = snap.shards.iter().find(|s| s.shard == ShardId::from_raw(0));
        assert_eq!(tcp.expect("tcp shard contributes").chunk, 2);
    }
    // A server going away is a LinkDown, not a panic; health ages.
    drop(tcp_server);
    std::thread::sleep(Duration::from_millis(50));
    let after = scraper.poll_round();
    assert_eq!(after.failures, 1);
    {
        let snap = reader.read().unwrap();
        let h = snap.shard_health(ShardId::from_raw(0)).unwrap();
        assert!(h.age > 0);
    }
    drop(unix_server);
    assert!(!path.exists(), "unix server must clean up its socket file");
}
