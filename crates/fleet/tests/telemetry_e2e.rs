//! The telemetry plane end to end: a window's life reconstructed from
//! span rings alone, registry dumps flowing over the v3 wire, and the
//! scraper-backed session surface for fleet-wide metrics.
//!
//! The headline acceptance test follows one window index across all six
//! pipeline stages — ingest → assemble → EP sweep → publish on the
//! monitor's tracer, scrape → fuse on the aggregator's — using nothing
//! but what the telemetry plane recorded.

use bayesperf_core::corrector::CorrectorConfig;
use bayesperf_core::{Monitor, ShimError, SnapshotView};
use bayesperf_events::{Arch, Catalog, Semantic};
use bayesperf_fleet::{
    Fleet, FleetConfig, FleetScraper, ScrapeConfig, ScrapeResponder, ShardId, ShardLabel,
    SimTransport, SnapshotSource,
};
use bayesperf_inference::{EpRunStats, Gaussian};
use bayesperf_obs::{MetricSnapshot, MetricValue, Stage, Telemetry};
use bayesperf_simcpu::{pack_round_robin, LinkProfile, LinkState, MultiplexRun, Pmu, PmuConfig};
use bayesperf_workloads::kmeans;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

fn recorded_run(cat: &Catalog, n_windows: usize) -> MultiplexRun {
    let mut truth = kmeans().instantiate(cat, 0);
    let pmu = Pmu::new(cat, PmuConfig::for_catalog(cat));
    let events = vec![
        cat.require(Semantic::L1dMisses),
        cat.require(Semantic::LlcHits),
        cat.require(Semantic::LlcMisses),
    ];
    let schedule = pack_round_robin(cat, &events).expect("schedule fits");
    pmu.run_multiplexed(&mut truth, &schedule, n_windows)
}

/// The acceptance bar: pick a window index and reconstruct its whole
/// pipeline — ingest, window assembly, the EP sweep, snapshot publish,
/// the scrape that carried it, the fusion that published it — from the
/// two span tracers alone. Every stage must be present, internally
/// ordered, and contiguous where the service hands off synchronously.
#[test]
fn one_windows_life_is_reconstructable_from_spans_alone() {
    let cat = Catalog::new(Arch::X86SkyLake);
    let run = recorded_run(&cat, 12);
    let monitor =
        Monitor::new(&cat, CorrectorConfig::for_run(&run), 1 << 14).expect("spawn monitor");
    for w in &run.windows {
        for s in &w.samples {
            monitor.push_sample(*s).expect("room");
        }
    }
    monitor.flush().expect("service alive");

    // Serve the monitor through the scrape plane over a clean sim link.
    let mut scraper = FleetScraper::new(cat.len(), ScrapeConfig::default());
    let session = monitor.session().open().expect("open");
    let responder = Arc::new(ScrapeResponder::new(
        ShardId::from_raw(0),
        ShardLabel::new("m0", 0),
        session,
    ));
    scraper.add_endpoint(
        ShardId::from_raw(0),
        ShardLabel::new("m0", 0),
        Box::new(SimTransport::new(
            responder,
            LinkState::new(LinkProfile::clean(7)),
        )),
    );
    let report = scraper.poll_round();
    assert_eq!(report.full_snapshots, 1);

    // The window under reconstruction: the one the fusion published,
    // read back from the scraper's own Fuse span.
    let scraper_spans = scraper.telemetry().spans().records();
    let fuse = scraper_spans
        .iter()
        .find(|s| s.stage == Stage::Fuse)
        .expect("published round leaves a fuse span");
    let w = fuse.window;

    // Monitor side: all four service stages for that window, in order,
    // with synchronous hand-offs contiguous (ingest closes where the
    // assemble wait opens; the assemble wait ends where the sweep
    // starts; the sweep precedes the publish).
    let monitor_spans = monitor.telemetry().spans().for_window(w);
    let stages: Vec<Stage> = monitor_spans.iter().map(|s| s.stage).collect();
    assert_eq!(
        stages,
        [
            Stage::Ingest,
            Stage::Assemble,
            Stage::EpSweep,
            Stage::Publish
        ],
        "window {w} must traverse every service stage exactly once"
    );
    for s in &monitor_spans {
        assert!(s.end_ns >= s.start_ns, "{:?} runs backwards", s.stage);
    }
    let by_stage = |stage: Stage| {
        monitor_spans
            .iter()
            .find(|s| s.stage == stage)
            .copied()
            .expect("present")
    };
    let (ingest, assemble) = (by_stage(Stage::Ingest), by_stage(Stage::Assemble));
    let (sweep, publish) = (by_stage(Stage::EpSweep), by_stage(Stage::Publish));
    assert_eq!(ingest.end_ns, assemble.start_ns, "ingest -> assemble");
    assert_eq!(assemble.end_ns, sweep.start_ns, "assemble -> ep_sweep");
    assert!(publish.start_ns >= sweep.end_ns, "ep_sweep -> publish");

    // Aggregator side: the scrape that carried window `w` and the fusion
    // that published it, on the scraper's tracer.
    let scrape = scraper_spans
        .iter()
        .find(|s| s.stage == Stage::Scrape && s.window == w)
        .expect("the carrying scrape is recorded for the same window");
    assert!(scrape.end_ns >= scrape.start_ns);
    assert!(fuse.end_ns >= fuse.start_ns);
    assert!(
        fuse.end_ns >= scrape.start_ns,
        "fusion completes after its scrape began"
    );
    // And the published fused snapshot really is that window.
    let reader = scraper.reader();
    let snap = reader.read().expect("published");
    assert_eq!(snap.max_window(), w);
}

/// A synthetic shard whose registry is under test control.
struct MeteredSource {
    version: AtomicU64,
    events: usize,
    tele: Telemetry,
}

impl MeteredSource {
    fn new(events: usize, polls_name: &str, polls: u64) -> Arc<MeteredSource> {
        let tele = Telemetry::new();
        tele.registry().counter(polls_name).add(polls);
        Arc::new(MeteredSource {
            version: AtomicU64::new(1),
            events,
            tele,
        })
    }
}

impl SnapshotSource for MeteredSource {
    fn source_stamp(&self) -> Result<(u32, u64), ShimError> {
        let v = self.version.load(Ordering::Relaxed);
        Ok((v as u32, v))
    }

    fn source_view(&self) -> Result<SnapshotView, ShimError> {
        let v = self.version.load(Ordering::Relaxed);
        Ok(SnapshotView {
            window: v as u32,
            chunk: v,
            stats: EpRunStats::default(),
            late_by_source: Vec::new(),
            posteriors: (0..self.events)
                .map(|e| Gaussian::new(10.0 + e as f64, 1.0))
                .collect(),
        })
    }

    fn source_metrics(&self) -> Option<Vec<MetricSnapshot>> {
        Some(self.tele.registry().snapshot())
    }
}

fn counter_value(metrics: &[MetricSnapshot], name: &str) -> Option<u64> {
    metrics
        .iter()
        .find(|m| m.name == name)
        .map(|m| match m.value {
            MetricValue::Counter(v) => v,
            ref other => panic!("{name} is not a counter: {other:?}"),
        })
}

/// Registry dumps flow over the v3 wire: `poll_telemetry` pulls every
/// shard's metrics through the same transports the snapshot scrape uses,
/// merges same-named counters across shards, and folds in the scraper's
/// own scrape-plane metrics.
#[test]
fn telemetry_frames_flow_over_the_sim_wire_and_merge() {
    let events = 4;
    let mut scraper = FleetScraper::new(events, ScrapeConfig::default());
    for shard in 0..3u32 {
        let source = MeteredSource::new(events, "sim.polls", u64::from(shard) + 10);
        let label = ShardLabel::new(format!("m{shard}"), 0);
        let responder = Arc::new(ScrapeResponder::new(
            ShardId::from_raw(shard),
            label.clone(),
            source,
        ));
        scraper.add_endpoint(
            ShardId::from_raw(shard),
            label,
            Box::new(SimTransport::new(
                responder,
                LinkState::new(LinkProfile::clean(u64::from(shard))),
            )),
        );
    }
    scraper.poll_round();
    let metrics = scraper.poll_telemetry();
    // Same-named shard counters sum across the fleet: 10 + 11 + 12.
    assert_eq!(counter_value(&metrics, "sim.polls"), Some(33));
    // The scraper's own registry rides along in the same dump.
    assert_eq!(counter_value(&metrics, "scrape.rounds"), Some(1));
    assert_eq!(counter_value(&metrics, "scrape.full_snapshots"), Some(3));
}

/// The scraper-backed `FleetSession`: fused reads plus live cumulative
/// scrape totals and the cached fleet-wide metric dump, with no public
/// API the in-process fleet session doesn't also have.
#[test]
fn scraper_backed_session_serves_totals_and_fleet_metrics() {
    let cat = Catalog::new(Arch::X86SkyLake);
    let mut scraper = FleetScraper::new(cat.len(), ScrapeConfig::default());
    for shard in 0..2u32 {
        let source = MeteredSource::new(cat.len(), "sim.polls", 5);
        let label = ShardLabel::new(format!("m{shard}"), 0);
        let responder = Arc::new(ScrapeResponder::new(
            ShardId::from_raw(shard),
            label.clone(),
            source,
        ));
        scraper.add_endpoint(
            ShardId::from_raw(shard),
            label,
            Box::new(SimTransport::new(
                responder,
                LinkState::new(LinkProfile::clean(u64::from(shard))),
            )),
        );
    }
    let session = scraper.session(&cat);
    let r0 = scraper.poll_round();
    let r1 = scraper.poll_round();
    scraper.poll_telemetry();

    // Totals are live registry reads, so rounds run after the session
    // was built still count.
    let totals = session.scrape_totals().expect("open");
    assert_eq!(totals.rounds, 2);
    assert_eq!(
        totals.full_snapshots,
        (r0.full_snapshots + r1.full_snapshots) as u64
    );
    assert_eq!(
        totals.bytes_received,
        r0.bytes_received + r1.bytes_received,
        "cumulative totals equal the per-round report sums"
    );

    // The fused read surface works, and fleet_metrics carries both the
    // scrape plane's counters and the cached shard dumps.
    let ev = cat.require(Semantic::L1dMisses);
    assert!(session.read(ev).is_ok(), "fused cell published");
    let metrics = session.fleet_metrics().expect("open");
    assert_eq!(counter_value(&metrics, "scrape.rounds"), Some(2));
    assert_eq!(counter_value(&metrics, "sim.polls"), Some(10));
}

/// The in-process fleet's session exposes the same surface: member
/// registries merge live (no wire, no cache), and the aggregator-restart
/// counter backs the long-standing accessor.
#[test]
fn in_process_fleet_session_merges_member_registries() {
    let cat = Catalog::new(Arch::X86SkyLake);
    let run = recorded_run(&cat, 6);
    let mut fleet =
        Fleet::new(&cat, FleetConfig::new(CorrectorConfig::for_run(&run))).expect("spawn fleet");
    let ids: Vec<_> = (0..2)
        .map(|i| {
            fleet
                .add_shard(ShardLabel::new(format!("m{i}"), 0))
                .expect("spawn shard")
        })
        .collect();
    for &id in &ids {
        for w in &run.windows {
            for s in &w.samples {
                fleet.push_sample(id, *s).expect("room");
            }
        }
    }
    fleet.flush().expect("fleet alive");

    let session = fleet.session().open().expect("open");
    let metrics = session.fleet_metrics().expect("open");
    // Both members corrected chunks; their per-monitor counters sum.
    let chunks = counter_value(&metrics, "service.chunks_run").expect("instrumented members");
    assert!(
        chunks >= 2,
        "two members must have corrected chunks, got {chunks}"
    );
    // The fleet's own registry rides along.
    assert_eq!(counter_value(&metrics, "fleet.agg_restarts"), Some(0));
    assert_eq!(fleet.agg_restarts(), 0);
    // No scrape plane on an in-process fleet: totals are all zero.
    let totals = session.scrape_totals().expect("open");
    assert_eq!(totals, bayesperf_fleet::ScrapeTotals::default());
}
