//! The local liveness watchdog and aggregator crash containment: a
//! *stalled* shard monitor (thread alive, heartbeat frozen) must walk the
//! same Healthy → Stale → Dead health machine a dead remote shard does,
//! its fused weight must shrink while it decays, and it must come
//! straight back to Healthy once it resumes. The aggregator's own crash
//! supervisor must contain injected panics without losing generations or
//! tearing snapshots.
//!
//! The stall is real, not simulated: a [`ScheduleHook`] that parks the
//! shard's inference thread inside a publish, exactly where a wedged
//! downstream consumer would. Scrape passes are pumped explicitly via
//! [`Fleet::refresh`] with the idle ticker parked at one hour, so the
//! health aging is deterministic — one round per refresh, no wall-clock
//! races.

use bayesperf_core::corrector::CorrectorConfig;
use bayesperf_core::service::ScheduleHook;
use bayesperf_events::{Arch, Catalog, Semantic};
use bayesperf_fleet::{Fleet, FleetConfig, HealthPolicy, HealthState, ShardId, ShardLabel};
use bayesperf_inference::Gaussian;
use bayesperf_simcpu::{pack_round_robin, MultiplexRun, Pmu, PmuConfig};
use bayesperf_workloads::kmeans;
use std::sync::atomic::{AtomicBool, Ordering::SeqCst};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn recorded_run(cat: &Catalog, n_windows: usize) -> MultiplexRun {
    let mut truth = kmeans().instantiate(cat, 0);
    let pmu = Pmu::new(cat, PmuConfig::for_catalog(cat));
    let events = vec![
        cat.require(Semantic::L1dMisses),
        cat.require(Semantic::LlcHits),
        cat.require(Semantic::LlcMisses),
    ];
    let schedule = pack_round_robin(cat, &events).expect("schedule fits");
    pmu.run_multiplexed(&mut truth, &schedule, n_windows)
}

fn feed(fleet: &Fleet, shard: ShardId, run: &MultiplexRun, windows: std::ops::Range<usize>) {
    for w in &run.windows[windows] {
        for s in &w.samples {
            fleet.push_sample(shard, *s).expect("room");
        }
    }
}

fn wait_until(what: &str, mut pred: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(30);
    while !pred() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::yield_now();
    }
}

/// Parks the inference thread inside `on_publish` until released — a
/// faithful stall: the thread is alive and mid-work, so `idle` is false
/// while the heartbeat stays frozen.
struct ParkHook {
    entered: Arc<AtomicBool>,
    release: Arc<AtomicBool>,
}

impl ScheduleHook for ParkHook {
    fn on_publish(&mut self, _window: u32, _chunk: u64, _posteriors: &[Gaussian]) {
        self.entered.store(true, SeqCst);
        while !self.release.load(SeqCst) {
            std::thread::sleep(Duration::from_micros(50));
        }
    }
}

/// A fleet config whose idle scrape ticker never fires, so every health
/// round is an explicit `refresh()` — deterministic aging.
fn pumped_config(corrector: CorrectorConfig, health: HealthPolicy) -> FleetConfig {
    let mut config = FleetConfig::new(corrector);
    config.scrape_interval = Duration::from_secs(3600);
    config.health = health;
    config
}

fn health_of(fleet: &Fleet, shard: ShardId) -> (HealthState, u32, f64) {
    let snap = fleet.snapshot().expect("published");
    let row = snap
        .health
        .iter()
        .find(|h| h.shard == shard)
        .expect("every registered shard has a health row");
    (row.state, row.age, row.inflation)
}

#[test]
fn stalled_shard_decays_healthy_stale_dead_and_recovers() {
    let cat = Catalog::new(Arch::X86SkyLake);
    let run = recorded_run(&cat, 24);
    let cfg = CorrectorConfig::for_run(&run);
    let k = cfg.model.slices;
    assert_eq!(k, 6, "fixture assumes the default chunk size");

    // Tight thresholds so the decay is observable in a handful of
    // refresh-pumped rounds: one failed round → Stale, three → Dead.
    let policy = HealthPolicy {
        stale_after: 1,
        dead_after: 3,
        ..HealthPolicy::default()
    };
    let mut fleet = Fleet::new(&cat, pumped_config(cfg, policy)).expect("spawn fleet");
    let victim = fleet
        .add_shard(ShardLabel::new("m0", 0))
        .expect("spawn shard");
    let witness = fleet
        .add_shard(ShardLabel::new("m1", 0))
        .expect("spawn shard");

    // Baseline: identical streams on both shards, everybody healthy.
    feed(&fleet, victim, &run, 0..12);
    feed(&fleet, witness, &run, 0..12);
    fleet.flush().expect("alive");
    let ev = cat.require(Semantic::L1dMisses).index();
    let baseline = fleet.snapshot().expect("published");
    assert!(baseline
        .health
        .iter()
        .all(|h| h.state == HealthState::Healthy));
    let var_healthy = baseline.fused[ev].var;

    // Park the victim's inference thread inside its next publish.
    let entered = Arc::new(AtomicBool::new(false));
    let release = Arc::new(AtomicBool::new(false));
    fleet
        .with_shard_monitor(victim, |m| {
            m.set_schedule_hook(Box::new(ParkHook {
                entered: entered.clone(),
                release: release.clone(),
            }))
        })
        .expect("member")
        .expect("service alive");
    // One full chunk (windows 12..17; pushing 18 promotes them) triggers
    // the publish that walks into the hook. No flush — flush would block
    // behind the stall; the service drains the ring on its own.
    feed(&fleet, victim, &run, 12..19);
    wait_until("victim parked in its publish hook", || entered.load(SeqCst));

    // Round 1: the victim's heartbeat advanced while it drained the
    // chunk, so this round still counts as progress.
    fleet.refresh().expect("alive");

    // Round 2: heartbeat frozen and not idle — the watchdog sees a stall
    // and the shard turns Stale immediately (stale_after = 1), fusing
    // with inflated variance from here on.
    fleet.refresh().expect("alive");
    let (state, age, inflation) = health_of(&fleet, victim);
    assert_eq!((state, age), (HealthState::Stale, 1));
    assert!(
        inflation > 1.0,
        "stale shards fuse inflated, got {inflation}"
    );
    let stale_snap = fleet.snapshot().expect("published");
    assert!(
        stale_snap.shards.iter().any(|s| s.shard == victim),
        "stale shards still contribute"
    );
    let var_stale = stale_snap.fused[ev].var;
    assert!(
        var_stale > var_healthy,
        "inflating one input must widen the fused posterior: {var_stale} vs {var_healthy}"
    );

    // Rounds 3–4: the stall persists; at age 3 the victim is Dead and
    // leaves fusion entirely. The fused posterior stays finite — it is
    // now the witness alone, wider still than the stale mixture.
    fleet.refresh().expect("alive");
    fleet.refresh().expect("alive");
    let (state, age, _) = health_of(&fleet, victim);
    assert_eq!((state, age), (HealthState::Dead, 3));
    let dead_snap = fleet.snapshot().expect("published");
    assert!(
        dead_snap.shards.iter().all(|s| s.shard != victim),
        "dead shards are excluded from fusion"
    );
    assert_eq!(health_of(&fleet, witness).0, HealthState::Healthy);
    let var_dead = dead_snap.fused[ev].var;
    assert!(var_dead.is_finite() && var_dead > var_stale);
    for g in &dead_snap.fused {
        assert!(g.mean.is_finite() && g.var.is_finite() && g.var > 0.0);
    }

    // Recovery: unpark the thread; it finishes the publish, goes idle,
    // and the next round proves the cache current again — one success
    // sends Dead straight back to Healthy, contributing immediately.
    release.store(true, SeqCst);
    fleet
        .with_shard_monitor(victim, |m| {
            wait_until("victim idle again", || m.heartbeat().1);
        })
        .expect("member");
    fleet.refresh().expect("alive");
    let (state, age, inflation) = health_of(&fleet, victim);
    assert_eq!((state, age, inflation), (HealthState::Healthy, 0, 1.0));
    let recovered = fleet.snapshot().expect("published");
    assert!(
        recovered.shards.iter().any(|s| s.shard == victim),
        "recovered shard fuses again"
    );

    // The stalled stretch never wedged the fleet: a flush drains the
    // victim's remaining tail and the read surface is fully live.
    fleet.flush().expect("alive");
    let session = fleet.session().open().expect("open");
    let group = session.read_group().expect("fused reads");
    assert!(group
        .readings
        .iter()
        .all(|(_, r)| r.value.is_finite() && r.std_dev > 0.0));
}

#[test]
fn aggregator_panics_are_contained_and_generations_stay_monotone() {
    let cat = Catalog::new(Arch::X86SkyLake);
    let run = recorded_run(&cat, 24);
    let cfg = CorrectorConfig::for_run(&run);
    let mut fleet =
        Fleet::new(&cat, pumped_config(cfg, HealthPolicy::default())).expect("spawn fleet");
    let shard = fleet
        .add_shard(ShardLabel::new("m0", 0))
        .expect("spawn shard");

    feed(&fleet, shard, &run, 0..6);
    fleet.flush().expect("alive");
    let before = fleet.snapshot().expect("published");

    // Three crash/restart cycles, each followed by real progress so the
    // consecutive-crash budget keeps resetting.
    for round in 1..=3u64 {
        fleet.inject_agg_panic().expect("alive");
        wait_until("aggregator restart", || fleet.agg_restarts() >= round);

        feed(
            &fleet,
            shard,
            &run,
            (round as usize * 6)..(round as usize + 1) * 6,
        );
        fleet.flush().expect("aggregator back up");
        let snap = fleet.snapshot().expect("published");
        assert!(
            snap.generation > before.generation,
            "round {round}: generation moved on across the crash"
        );
        assert_eq!(snap.fused.len(), cat.len());
        for g in &snap.fused {
            assert!(g.mean.is_finite() && g.var.is_finite() && g.var > 0.0);
        }
        assert!(
            snap.shards.iter().any(|s| s.shard == shard),
            "round {round}: the shard still contributes after the crash"
        );
    }
    assert_eq!(fleet.agg_restarts(), 3);

    // Orderly shutdown still works after all that.
    fleet.close();
    assert!(fleet.refresh().is_err(), "closed fleet refuses refresh");
}

#[test]
fn crashed_shard_monitor_recovers_inside_the_fleet() {
    let cat = Catalog::new(Arch::X86SkyLake);
    let run = recorded_run(&cat, 12);
    let cfg = CorrectorConfig::for_run(&run);
    let mut fleet =
        Fleet::new(&cat, pumped_config(cfg, HealthPolicy::default())).expect("spawn fleet");
    let shard = fleet
        .add_shard(ShardLabel::new("m0", 0))
        .expect("spawn shard");

    feed(&fleet, shard, &run, 0..6);
    fleet.flush().expect("alive");

    // Crash the *shard's* inference service (not the aggregator) and
    // wait for its local supervisor to bring it back.
    fleet
        .with_shard_monitor(shard, |m| {
            m.inject_panic().expect("alive");
            wait_until("shard supervisor restart", || m.restarts() >= 1);
            wait_until("shard running again", || {
                matches!(
                    m.service_state(),
                    bayesperf_core::service::ServiceState::Running
                )
            });
        })
        .expect("member");

    // The warm-restarted shard keeps correcting and the fleet keeps
    // fusing it — windows continue past the crash point.
    feed(&fleet, shard, &run, 6..12);
    fleet.flush().expect("alive");
    let snap = fleet.snapshot().expect("published");
    let status = snap
        .shards
        .iter()
        .find(|s| s.shard == shard)
        .expect("shard contributes after its crash");
    assert_eq!(status.window as usize, run.windows.len() - 1);
    assert!(snap.fused.iter().all(|g| g.mean.is_finite() && g.var > 0.0));
    assert_eq!(
        health_of(&fleet, shard).0,
        HealthState::Healthy,
        "a recovered shard monitor reads Healthy"
    );
}
