//! Fusion correctness against the closed form and against a single
//! monitor: the acceptance bars of the fleet subsystem.
//!
//! * Fusing N shards' Gaussians must match the precision-weighted
//!   product `N(η/λ, 1/λ)` to 1e-9.
//! * A one-shard fleet (fusion degenerates to identity) must reproduce
//!   the single-`Monitor` posterior **bit for bit**.
//! * An 8-shard fleet over identical sample streams must give identical
//!   per-shard posteriors and the closed-form `var/8` fused contraction.

use bayesperf_core::corrector::CorrectorConfig;
use bayesperf_core::Monitor;
use bayesperf_events::{Arch, Catalog, Semantic};
use bayesperf_fleet::{fuse_gaussians, Fleet, FleetConfig, ShardLabel};
use bayesperf_inference::Gaussian;
use bayesperf_simcpu::{pack_round_robin, MultiplexRun, Pmu, PmuConfig};
use bayesperf_workloads::kmeans;

fn recorded_run(cat: &Catalog, n_windows: usize) -> MultiplexRun {
    let mut truth = kmeans().instantiate(cat, 0);
    let pmu = Pmu::new(cat, PmuConfig::for_catalog(cat));
    let events = vec![
        cat.require(Semantic::L1dMisses),
        cat.require(Semantic::LlcHits),
        cat.require(Semantic::LlcMisses),
    ];
    let schedule = pack_round_robin(cat, &events).expect("schedule fits");
    pmu.run_multiplexed(&mut truth, &schedule, n_windows)
}

fn feed(fleet: &Fleet, shard: bayesperf_fleet::ShardId, run: &MultiplexRun) {
    for w in &run.windows {
        for s in &w.samples {
            fleet.push_sample(shard, *s).expect("ring has room");
        }
    }
}

#[test]
fn fusing_matches_the_closed_form_to_1e9() {
    // A spread of magnitudes, like real posteriors: confident observed
    // events, vague invariant-linked ones.
    let shards = [
        Gaussian::new(1.0e6, 2.5e3),
        Gaussian::new(1.1e6, 9.0e2),
        Gaussian::new(0.8e6, 4.0e7),
        Gaussian::new(1.05e6, 1.0),
    ];
    let fused = fuse_gaussians(&shards).unwrap();
    let lambda: f64 = shards.iter().map(|g| 1.0 / g.var).sum();
    let eta: f64 = shards.iter().map(|g| g.mean / g.var).sum();
    assert!(
        ((fused.mean - eta / lambda) / (eta / lambda)).abs() < 1e-9,
        "mean {} vs {}",
        fused.mean,
        eta / lambda
    );
    assert!(
        ((fused.var - 1.0 / lambda) / (1.0 / lambda)).abs() < 1e-9,
        "var {} vs {}",
        fused.var,
        1.0 / lambda
    );
}

#[test]
fn one_shard_fleet_reproduces_the_monitor_bit_for_bit() {
    let cat = Catalog::new(Arch::X86SkyLake);
    let run = recorded_run(&cat, 9);
    let cfg = CorrectorConfig::for_run(&run);

    // Reference: a bare monitor over the same stream.
    let monitor = Monitor::new(&cat, cfg.clone(), 1 << 14).expect("spawn monitor");
    for w in &run.windows {
        for s in &w.samples {
            monitor.push_sample(*s).expect("room");
        }
    }
    monitor.flush().expect("alive");
    let reference = monitor
        .session()
        .open()
        .expect("open")
        .snapshot()
        .expect("published");

    // A fleet whose fusion degenerates to one contributing shard.
    let mut fleet = Fleet::new(&cat, FleetConfig::new(cfg)).expect("spawn fleet");
    let shard = fleet
        .add_shard(ShardLabel::new("only-machine", 0))
        .expect("spawn shard");
    feed(&fleet, shard, &run);
    fleet.flush().expect("alive");
    let fused = fleet.snapshot().expect("published");

    assert_eq!(fused.shards.len(), 1);
    assert_eq!(fused.shards[0].window, reference.window);
    assert_eq!(fused.fused.len(), reference.posteriors.len());
    for (f, r) in fused.fused.iter().zip(&reference.posteriors) {
        assert_eq!(f.mean.to_bits(), r.mean.to_bits(), "mean drifted");
        assert_eq!(f.var.to_bits(), r.var.to_bits(), "variance drifted");
    }

    // The fleet session's read surface serves the same bits.
    let session = fleet.session().open().expect("open");
    let ev = cat.require(Semantic::L1dMisses);
    let fleet_read = session.read(ev).expect("read");
    let mono_read = bayesperf_core::Reading::from_gaussian(&reference.posteriors[ev.index()]);
    assert_eq!(fleet_read, mono_read);
}

#[test]
fn eight_identical_shards_contract_variance_by_the_closed_form() {
    let cat = Catalog::new(Arch::X86SkyLake);
    let run = recorded_run(&cat, 6);
    let cfg = CorrectorConfig::for_run(&run);
    let n_shards = 8u32;

    let mut fleet = Fleet::new(&cat, FleetConfig::new(cfg)).expect("spawn fleet");
    let ids: Vec<_> = (0..n_shards)
        .map(|i| {
            fleet
                .add_shard(ShardLabel::new(format!("m{i}"), 0))
                .expect("spawn shard")
        })
        .collect();
    for &id in &ids {
        feed(&fleet, id, &run);
    }
    fleet.flush().expect("alive");
    let snap = fleet.snapshot().expect("published");
    assert_eq!(snap.shards.len(), n_shards as usize);

    // Identical streams + deterministic inference: every shard's
    // posterior is bit-identical.
    for shard in &snap.per_shard[1..] {
        for (g, g0) in shard.iter().zip(&snap.per_shard[0]) {
            assert_eq!(g.mean.to_bits(), g0.mean.to_bits());
            assert_eq!(g.var.to_bits(), g0.var.to_bits());
        }
    }

    // Fusing N identical N(μ, σ²) gives N(μ, σ²/N) in closed form.
    for (e, fused) in snap.fused.iter().enumerate() {
        let one = snap.per_shard[0][e];
        let rel_mean = ((fused.mean - one.mean) / one.mean).abs();
        let rel_var = ((fused.var - one.var / f64::from(n_shards)) / (one.var / 8.0)).abs();
        assert!(rel_mean < 1e-9, "event {e}: fused mean off by {rel_mean}");
        assert!(rel_var < 1e-9, "event {e}: fused var off by {rel_var}");
    }

    // No shard lags: identical streams means no stragglers at lag 0.
    assert!(snap.stragglers(0).is_empty());
    // The cross-shard percentile view collapses onto the common mean.
    let ev = cat.require(Semantic::L1dMisses).index();
    assert_eq!(
        snap.percentile_mean(ev, 0.99),
        Some(snap.per_shard[0][ev].mean)
    );
}

#[test]
fn fleet_and_monitor_derived_metrics_agree() {
    let cat = Catalog::new(Arch::X86SkyLake);
    let run = recorded_run(&cat, 6);
    let cfg = CorrectorConfig::for_run(&run);
    let name = cat.derived_events()[0].name.clone();

    let monitor = Monitor::new(&cat, cfg.clone(), 1 << 14).expect("spawn monitor");
    for w in &run.windows {
        for s in &w.samples {
            monitor.push_sample(*s).expect("room");
        }
    }
    monitor.flush().expect("alive");
    let mono = monitor
        .session()
        .derived(&name)
        .open()
        .expect("open")
        .read_derived(&name)
        .expect("derived");

    let mut fleet = Fleet::new(&cat, FleetConfig::new(cfg)).expect("spawn fleet");
    let shard = fleet
        .add_shard(ShardLabel::new("m0", 0))
        .expect("spawn shard");
    feed(&fleet, shard, &run);
    fleet.flush().expect("alive");
    let fused = fleet
        .session()
        .derived(&name)
        .open()
        .expect("open")
        .read_derived(&name)
        .expect("derived");

    // One shard: the shared propagation helper must give identical
    // readings on identical posteriors.
    assert_eq!(mono, fused);
}
