//! Property tests for the log-scale histogram bucket layout (the
//! satellite invariant): bucket boundaries are strictly monotone and
//! every value round-trips into the bucket whose range contains it.

use bayesperf_obs::{bucket_index, bucket_upper, Histogram, HISTOGRAM_BUCKETS};
use proptest::prelude::*;

#[test]
fn bucket_boundaries_are_strictly_monotone() {
    for i in 1..HISTOGRAM_BUCKETS {
        assert!(
            bucket_upper(i) > bucket_upper(i - 1),
            "bucket {i} upper bound not above bucket {}",
            i - 1
        );
    }
    assert_eq!(bucket_upper(0), 0);
    assert_eq!(bucket_upper(HISTOGRAM_BUCKETS - 1), u64::MAX);
}

proptest! {
    /// A value lands in the first bucket whose upper bound covers it:
    /// `v <= upper(idx)` and, unless it is bucket 0, `v > upper(idx-1)`.
    #[test]
    fn values_round_trip_into_their_bucket(v in 0u64..u64::MAX) {
        let idx = bucket_index(v);
        prop_assert!(idx < HISTOGRAM_BUCKETS);
        prop_assert!(v <= bucket_upper(idx));
        if idx > 0 {
            prop_assert!(v > bucket_upper(idx - 1));
        }
    }

    /// Recording any batch conserves count and sum exactly, and the
    /// coarse quantile is an upper bound consistent with the layout: the
    /// max recorded value never exceeds the p100 bucket bound.
    #[test]
    fn recorded_batches_are_conserved(values in proptest::collection::vec(0u64..1 << 48, 1..200)) {
        let h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let snap = h.snapshot();
        prop_assert_eq!(snap.count(), values.len() as u64);
        prop_assert_eq!(snap.sum, values.iter().sum::<u64>());
        let max = *values.iter().max().expect("non-empty");
        prop_assert!(max <= snap.quantile_upper(1.0));
        prop_assert!(snap.quantile_upper(0.5) <= snap.quantile_upper(1.0));
    }
}
