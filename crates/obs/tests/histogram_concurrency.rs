//! Concurrency coverage for the histogram hot path (the satellite
//! invariant): multi-threaded recorders with concurrent snapshots must
//! conserve the total count and never expose a torn bucket.

use bayesperf_obs::{bucket_index, Histogram, Registry, HISTOGRAM_BUCKETS};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

const THREADS: usize = 8;
const RECORDS_PER_THREAD: u64 = 50_000;

/// Every record lands in exactly one bucket, so after all recorders join
/// the bucket totals must equal the number of records and the sum must be
/// exact — across threads, with no lost updates.
#[test]
fn concurrent_recorders_conserve_count_and_sum() {
    let h = Histogram::new();
    let mut expected_sum = 0u64;
    let mut expected_buckets = [0u64; HISTOGRAM_BUCKETS];
    // Deterministic per-thread value streams (xorshift), precomputed so
    // the expectation is exact.
    let streams: Vec<Vec<u64>> = (0..THREADS)
        .map(|t| {
            let mut x = 0x9e3779b97f4a7c15u64 ^ (t as u64 + 1);
            (0..RECORDS_PER_THREAD)
                .map(|_| {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    x >> (x % 64) // spread across all magnitudes
                })
                .collect()
        })
        .collect();
    for s in &streams {
        for &v in s {
            expected_sum = expected_sum.wrapping_add(v);
            expected_buckets[bucket_index(v)] += 1;
        }
    }

    std::thread::scope(|scope| {
        for s in &streams {
            let h = h.clone();
            scope.spawn(move || {
                for &v in s {
                    h.record(v);
                }
            });
        }
    });

    let snap = h.snapshot();
    assert_eq!(snap.count(), THREADS as u64 * RECORDS_PER_THREAD);
    assert_eq!(snap.sum, expected_sum);
    assert_eq!(snap.buckets, expected_buckets);
}

/// Snapshots taken *while* recorders run never see more events than were
/// issued, never go backwards, and every observed bucket count is
/// monotone — i.e. no torn or phantom buckets mid-flight.
#[test]
fn concurrent_snapshots_are_monotone_and_never_torn() {
    let h = Histogram::new();
    let done = Arc::new(AtomicBool::new(false));

    std::thread::scope(|scope| {
        for t in 0..4u64 {
            let h = h.clone();
            let done = done.clone();
            scope.spawn(move || {
                for i in 0..20_000u64 {
                    h.record((i << (t % 8)) + t);
                }
                done.store(true, Ordering::Release);
            });
        }
        let mut last = bayesperf_obs::HistogramSnapshot::default();
        while !done.load(Ordering::Acquire) {
            let snap = h.snapshot();
            assert!(snap.count() <= 4 * 20_000, "count overshoots issuance");
            assert!(
                snap.count() >= last.count(),
                "total count went backwards across snapshots"
            );
            for (i, (&now, &then)) in snap.buckets.iter().zip(last.buckets.iter()).enumerate() {
                assert!(now >= then, "bucket {i} count went backwards (torn read?)");
            }
            last = snap;
        }
    });
}

/// Registration races: many threads resolving the same metric names get
/// handles onto the same underlying atomics.
#[test]
fn registry_resolution_is_race_free() {
    let r = Registry::new();
    std::thread::scope(|scope| {
        for _ in 0..8 {
            let r = r.clone();
            scope.spawn(move || {
                for _ in 0..1_000 {
                    r.counter("shared.count").incr();
                    r.histogram("shared.hist").record(1);
                }
            });
        }
    });
    assert_eq!(r.counter("shared.count").get(), 8_000);
    assert_eq!(r.histogram("shared.hist").snapshot().count(), 8_000);
    // One entry per name, not one per racing registrant.
    assert_eq!(r.snapshot().len(), 2);
}
