//! Prometheus-style text exposition of a metric dump.
//!
//! [`render_prometheus`] turns a `Vec<MetricSnapshot>` (local, from
//! `Registry::snapshot`, or fleet-wide, merged over the telemetry wire
//! frame) into the text format scrapers expect: `# TYPE` headers, dots
//! mapped to underscores, histograms as cumulative `_bucket{le="..."}`
//! series plus `_sum`/`_count`. Rendering is cold-path only — it is never
//! invoked from recording code.

use crate::metrics::{bucket_upper, MetricSnapshot, MetricValue, HISTOGRAM_BUCKETS};

/// Splits `ingest.late_dropped{source="2"}` into a sanitized series name
/// (`ingest_late_dropped`) and its raw label block (`source="2"`).
fn split_name(full: &str) -> (String, Option<&str>) {
    let (base, labels) = match full.split_once('{') {
        Some((b, rest)) => (b, rest.strip_suffix('}')),
        None => (full, None),
    };
    let sanitized: String = base
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect();
    (sanitized, labels)
}

fn series(name: &str, labels: Option<&str>) -> String {
    match labels {
        Some(l) => format!("{name}{{{l}}}"),
        None => name.to_string(),
    }
}

fn series_extra(name: &str, labels: Option<&str>, key: &str, value: &str) -> String {
    match labels {
        Some(l) => format!("{name}{{{l},{key}=\"{value}\"}}"),
        None => format!("{name}{{{key}=\"{value}\"}}"),
    }
}

/// Renders a metric dump in the Prometheus text exposition format.
pub fn render_prometheus(metrics: &[MetricSnapshot]) -> String {
    let mut out = String::new();
    for m in metrics {
        let (name, labels) = split_name(&m.name);
        match &m.value {
            MetricValue::Counter(v) => {
                out.push_str(&format!("# TYPE {name} counter\n"));
                out.push_str(&format!("{} {v}\n", series(&name, labels)));
            }
            MetricValue::Gauge(v) => {
                out.push_str(&format!("# TYPE {name} gauge\n"));
                out.push_str(&format!("{} {v}\n", series(&name, labels)));
            }
            MetricValue::Histogram(h) => {
                out.push_str(&format!("# TYPE {name} histogram\n"));
                // Cumulative buckets up to the highest populated one; the
                // +Inf bucket always closes the series.
                let top = h
                    .buckets
                    .iter()
                    .rposition(|&c| c > 0)
                    .map(|i| i + 1)
                    .unwrap_or(0)
                    .min(HISTOGRAM_BUCKETS - 1);
                let mut cumulative = 0u64;
                for i in 0..top {
                    cumulative += h.buckets[i];
                    let le = bucket_upper(i).to_string();
                    out.push_str(&format!(
                        "{} {cumulative}\n",
                        series_extra(&format!("{name}_bucket"), labels, "le", &le)
                    ));
                }
                out.push_str(&format!(
                    "{} {}\n",
                    series_extra(&format!("{name}_bucket"), labels, "le", "+Inf"),
                    h.count()
                ));
                out.push_str(&format!(
                    "{} {}\n",
                    series(&format!("{name}_sum"), labels),
                    h.sum
                ));
                out.push_str(&format!(
                    "{} {}\n",
                    series(&format!("{name}_count"), labels),
                    h.count()
                ));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{Histogram, Registry};

    #[test]
    fn counters_and_gauges_render() {
        let r = Registry::new();
        r.counter("supervisor.restarts").add(2);
        r.gauge("service.idle").set(1.0);
        let text = render_prometheus(&r.snapshot());
        assert!(text.contains("# TYPE service_idle gauge\nservice_idle 1\n"));
        assert!(text.contains("# TYPE supervisor_restarts counter\nsupervisor_restarts 2\n"));
    }

    #[test]
    fn labels_survive_sanitization() {
        let r = Registry::new();
        r.counter(&crate::metrics::labeled("ingest.late_dropped", "source", 2))
            .add(7);
        let text = render_prometheus(&r.snapshot());
        assert!(text.contains("ingest_late_dropped{source=\"2\"} 7\n"));
    }

    #[test]
    fn histogram_renders_cumulative_buckets() {
        let h = Histogram::new();
        h.record(1);
        h.record(1);
        h.record(6);
        let snap = h.snapshot();
        let text = render_prometheus(&[MetricSnapshot {
            name: "ep.sweep_ns".into(),
            value: MetricValue::Histogram(Box::new(snap)),
        }]);
        assert!(text.contains("# TYPE ep_sweep_ns histogram\n"));
        assert!(text.contains("ep_sweep_ns_bucket{le=\"1\"} 2\n"));
        assert!(text.contains("ep_sweep_ns_bucket{le=\"7\"} 3\n"));
        assert!(text.contains("ep_sweep_ns_bucket{le=\"+Inf\"} 3\n"));
        assert!(text.contains("ep_sweep_ns_sum 8\n"));
        assert!(text.contains("ep_sweep_ns_count 3\n"));
    }
}
