//! The lock-free metrics registry: counters, gauges, and log-scale
//! histograms behind pre-registered handles.
//!
//! Registration (naming a metric, taking a handle) is the cold path and
//! takes a mutex; recording through a handle is the hot path and is a
//! single relaxed atomic RMW for counters and gauges, and two for
//! histograms (one bucket, one sum — the total count is derived from the
//! buckets at snapshot time, so no third op is paid per record). Handles
//! are `Clone` (they share the underlying atomic) and never allocate,
//! lock, or format on record.
//!
//! Metric names are dot-namespaced (`ep.sweep_ns`, `supervisor.restarts`)
//! with optional Prometheus-style labels appended by [`labeled`]
//! (`ingest.late_dropped{source="2"}`). The registry treats the full
//! string as the identity: registering the same name twice returns the
//! same underlying metric.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Number of fixed histogram buckets (one per power of two of `u64`).
pub const HISTOGRAM_BUCKETS: usize = 64;

/// A monotonically increasing counter. Recording is one relaxed
/// `fetch_add`.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds `n` to the counter.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one to the counter.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Adds `n` and returns the previous value — the atomic
    /// read-modify-write some call sites need (e.g. deriving a 1-based
    /// publication index from the cumulative count).
    #[inline]
    pub fn fetch_add(&self, n: u64) -> u64 {
        self.0.fetch_add(n, Ordering::Relaxed)
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-write-wins gauge holding an `f64` (stored as its bit pattern in
/// one atomic, so reads never tear). Recording is one relaxed `store`.
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Sets the gauge.
    #[inline]
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

struct HistogramInner {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    sum: AtomicU64,
}

/// A fixed-bucket log₂-scale histogram of `u64` samples (typically
/// nanoseconds or bytes).
///
/// Bucket 0 holds the value `0`; bucket `i >= 1` holds values in
/// `[2^(i-1), 2^i - 1]`; the last bucket absorbs everything from `2^62`
/// up. Recording touches exactly one bucket and the running sum, both
/// relaxed — a concurrent snapshot can be momentarily behind but never
/// sees a torn bucket (each bucket is a single atomic) and never loses a
/// record (every record lands in exactly one bucket, so the bucket totals
/// conserve the count).
#[derive(Clone)]
pub struct Histogram(Arc<HistogramInner>);

impl Default for Histogram {
    fn default() -> Self {
        Histogram(Arc::new(HistogramInner {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
        }))
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.snapshot().count())
            .finish()
    }
}

/// Bucket index a value lands in. Total over all values: monotone in `v`.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    ((u64::BITS - v.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
}

/// Inclusive upper bound of bucket `i` ([`bucket_index`] maps a value `v`
/// to the first bucket whose upper bound is `>= v`). Strictly monotone
/// over `i`.
#[inline]
pub fn bucket_upper(i: usize) -> u64 {
    if i >= HISTOGRAM_BUCKETS - 1 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

impl Histogram {
    /// Creates an unregistered histogram (tests; prefer
    /// [`Registry::histogram`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        self.0.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.0.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// A point-in-time copy of the buckets and sum.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; HISTOGRAM_BUCKETS];
        for (out, b) in buckets.iter_mut().zip(self.0.buckets.iter()) {
            *out = b.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            buckets,
            sum: self.0.sum.load(Ordering::Relaxed),
        }
    }
}

/// An immutable copy of a [`Histogram`]'s state, mergeable across shards.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket counts (see [`bucket_upper`] for the bucket layout).
    pub buckets: [u64; HISTOGRAM_BUCKETS],
    /// Sum of all recorded values (wrapping on overflow, like the atomic).
    pub sum: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            buckets: [0; HISTOGRAM_BUCKETS],
            sum: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Total number of recorded samples (derived from the buckets, so it
    /// is exactly conserved under concurrent recording and merging).
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Mean of recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum as f64 / n as f64
        }
    }

    /// Upper bound of the bucket containing the `q`-quantile sample
    /// (`q` in `[0, 1]`); 0 when empty. A coarse (factor-of-two) but
    /// allocation-free quantile, good enough for `p50/p99` log lines.
    pub fn quantile_upper(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * n as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_upper(i);
            }
        }
        bucket_upper(HISTOGRAM_BUCKETS - 1)
    }

    /// Adds another snapshot into this one (fleet-wide aggregation).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a = a.wrapping_add(*b);
        }
        self.sum = self.sum.wrapping_add(other.sum);
    }
}

/// The value half of a [`MetricSnapshot`].
#[derive(Clone, Debug, PartialEq)]
pub enum MetricValue {
    /// Cumulative count.
    Counter(u64),
    /// Last-write-wins instantaneous value.
    Gauge(f64),
    /// Log-scale distribution (boxed: the bucket array dwarfs the other
    /// variants and dumps are `Vec<MetricSnapshot>`).
    Histogram(Box<HistogramSnapshot>),
}

/// One named metric's point-in-time value, as returned by
/// [`Registry::snapshot`] and carried over the telemetry wire frame.
#[derive(Clone, Debug, PartialEq)]
pub struct MetricSnapshot {
    /// Full metric name including any `{label="value"}` suffix.
    pub name: String,
    /// The sampled value.
    pub value: MetricValue,
}

enum Handle {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

struct Entry {
    name: String,
    handle: Handle,
}

#[derive(Default)]
struct RegistryInner {
    metrics: Mutex<Vec<Entry>>,
}

/// The metric namespace: hands out (or re-resolves) named handles and
/// snapshots every registered metric in one pass.
///
/// Cloning shares the namespace. All methods are safe under lock
/// poisoning (a panicked registrant cannot take telemetry down with it).
#[derive(Clone, Default)]
pub struct Registry {
    inner: Arc<RegistryInner>,
}

fn lock_metrics(inner: &RegistryInner) -> std::sync::MutexGuard<'_, Vec<Entry>> {
    inner.metrics.lock().unwrap_or_else(|e| e.into_inner())
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or re-resolves) a counter. Panics if `name` is already
    /// registered as a different kind — metric identities are global to
    /// the registry and a kind flip is a programming error.
    pub fn counter(&self, name: &str) -> Counter {
        let mut m = lock_metrics(&self.inner);
        if let Some(e) = m.iter().find(|e| e.name == name) {
            match &e.handle {
                Handle::Counter(c) => return c.clone(),
                _ => panic!("metric {name:?} already registered with a different kind"),
            }
        }
        let c = Counter::default();
        m.push(Entry {
            name: name.to_string(),
            handle: Handle::Counter(c.clone()),
        });
        c
    }

    /// Registers (or re-resolves) a gauge. Panics on a kind mismatch.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut m = lock_metrics(&self.inner);
        if let Some(e) = m.iter().find(|e| e.name == name) {
            match &e.handle {
                Handle::Gauge(g) => return g.clone(),
                _ => panic!("metric {name:?} already registered with a different kind"),
            }
        }
        let g = Gauge::default();
        m.push(Entry {
            name: name.to_string(),
            handle: Handle::Gauge(g.clone()),
        });
        g
    }

    /// Registers (or re-resolves) a histogram. Panics on a kind mismatch.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut m = lock_metrics(&self.inner);
        if let Some(e) = m.iter().find(|e| e.name == name) {
            match &e.handle {
                Handle::Histogram(h) => return h.clone(),
                _ => panic!("metric {name:?} already registered with a different kind"),
            }
        }
        let h = Histogram::default();
        m.push(Entry {
            name: name.to_string(),
            handle: Handle::Histogram(h.clone()),
        });
        h
    }

    /// Snapshots every registered metric, sorted by name.
    pub fn snapshot(&self) -> Vec<MetricSnapshot> {
        let m = lock_metrics(&self.inner);
        let mut out: Vec<MetricSnapshot> = m
            .iter()
            .map(|e| MetricSnapshot {
                name: e.name.clone(),
                value: match &e.handle {
                    Handle::Counter(c) => MetricValue::Counter(c.get()),
                    Handle::Gauge(g) => MetricValue::Gauge(g.get()),
                    Handle::Histogram(h) => MetricValue::Histogram(Box::new(h.snapshot())),
                },
            })
            .collect();
        out.sort_by(|a, b| a.name.cmp(&b.name));
        out
    }
}

/// Appends one `{key="value"}` label to a metric name
/// (`labeled("ingest.late_dropped", "source", "2")`). Cold path only —
/// call at registration, never per record.
pub fn labeled(name: &str, key: &str, value: impl std::fmt::Display) -> String {
    format!("{name}{{{key}=\"{value}\"}}")
}

/// Merges per-shard metric dumps into one fleet-wide dump: counters and
/// histograms sum; gauges keep the last merged shard's value (they are
/// instantaneous, so summing would fabricate a reading no shard reported
/// — take one representative instead). Names absent from the accumulator
/// are appended; the result stays sorted by name.
pub fn merge_metrics(acc: &mut Vec<MetricSnapshot>, shard: &[MetricSnapshot]) {
    for s in shard {
        match acc.iter_mut().find(|a| a.name == s.name) {
            Some(a) => match (&mut a.value, &s.value) {
                (MetricValue::Counter(x), MetricValue::Counter(y)) => *x = x.wrapping_add(*y),
                (MetricValue::Gauge(x), MetricValue::Gauge(y)) => *x = *y,
                (MetricValue::Histogram(x), MetricValue::Histogram(y)) => x.merge(y),
                // A cross-shard kind clash: keep the accumulator's value
                // rather than corrupting it (heterogeneous builds).
                _ => {}
            },
            None => acc.push(s.clone()),
        }
    }
    acc.sort_by(|a, b| a.name.cmp(&b.name));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_gauge_roundtrip() {
        let r = Registry::new();
        let c = r.counter("a.count");
        c.add(3);
        c.incr();
        assert_eq!(c.get(), 4);
        // Re-registration resolves the same metric.
        assert_eq!(r.counter("a.count").get(), 4);
        let g = r.gauge("a.gauge");
        g.set(2.5);
        assert_eq!(g.get(), 2.5);
        let snap = r.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].value, MetricValue::Counter(4));
        assert_eq!(snap[1].value, MetricValue::Gauge(2.5));
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_flip_is_a_programming_error() {
        let r = Registry::new();
        r.counter("x");
        r.gauge("x");
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let h = Histogram::new();
        for v in [0u64, 1, 1, 7, 100, 1 << 40] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 6);
        assert_eq!(s.sum, 1 + 1 + 7 + 100 + (1u64 << 40));
        assert_eq!(s.buckets[bucket_index(0)], 1);
        assert_eq!(s.buckets[bucket_index(1)], 2);
        // Median falls in the bucket holding the two 1s.
        assert_eq!(s.quantile_upper(0.5), bucket_upper(bucket_index(1)));
        // Max quantile reaches the top recorded bucket.
        assert_eq!(s.quantile_upper(1.0), bucket_upper(bucket_index(1 << 40)));
    }

    #[test]
    fn histogram_merge_conserves_count_and_sum() {
        let a = Histogram::new();
        let b = Histogram::new();
        for v in 0..100u64 {
            a.record(v);
            b.record(v * 3);
        }
        let mut m = a.snapshot();
        m.merge(&b.snapshot());
        assert_eq!(m.count(), 200);
        assert_eq!(m.sum, (0..100u64).sum::<u64>() * 4);
    }

    #[test]
    fn labeled_formats_prometheus_style() {
        assert_eq!(
            labeled("ingest.late_dropped", "source", 2),
            "ingest.late_dropped{source=\"2\"}"
        );
    }

    #[test]
    fn merge_metrics_sums_counters_keeps_gauges() {
        let mut acc = vec![
            MetricSnapshot {
                name: "c".into(),
                value: MetricValue::Counter(1),
            },
            MetricSnapshot {
                name: "g".into(),
                value: MetricValue::Gauge(1.0),
            },
        ];
        let shard = vec![
            MetricSnapshot {
                name: "c".into(),
                value: MetricValue::Counter(2),
            },
            MetricSnapshot {
                name: "g".into(),
                value: MetricValue::Gauge(7.0),
            },
            MetricSnapshot {
                name: "new".into(),
                value: MetricValue::Counter(5),
            },
        ];
        merge_metrics(&mut acc, &shard);
        assert_eq!(acc.len(), 3);
        assert_eq!(acc[0].value, MetricValue::Counter(3));
        assert_eq!(acc[1].value, MetricValue::Gauge(7.0));
        assert_eq!(acc[2].value, MetricValue::Counter(5));
    }
}
