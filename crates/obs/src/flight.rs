//! The flight recorder: a bounded ring of recent structured events.
//!
//! Post-mortems should not depend on being attached at crash time. Every
//! supervision-relevant event (injected panics, restarts, quarantined
//! divergences, health transitions, vetoed publishes, backoff parks) is
//! pushed into a small ring; when the supervised service gives up
//! (`ServiceState::Failed`) the supervisor seals an automatic dump that
//! stays readable afterwards, and operators can [`FlightRecorder::dump`]
//! on demand at any point.
//!
//! Events are rare (cold path by construction: crashes, state flips), so
//! the ring is a mutexed `VecDeque` — correctness and bounded memory over
//! lock-freedom here, unlike the metrics hot path.

use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// A structured flight-recorder event.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum FlightEvent {
    /// A panic was injected through the test hook.
    PanicInjected,
    /// The supervised service crashed and is being restarted.
    ServiceRestart {
        /// Cumulative restart count including this one.
        restarts: u64,
        /// The panic payload that killed the run.
        cause: String,
    },
    /// The restart budget was exhausted; the service is permanently down.
    ServiceFailed {
        /// The final panic payload.
        cause: String,
    },
    /// The aggregator thread crashed and was restarted.
    AggRestart {
        /// Cumulative aggregator restart count including this one.
        restarts: u64,
        /// The panic payload.
        cause: String,
    },
    /// Diverged inference sites (or non-finite samples) were quarantined
    /// instead of being published.
    DivergenceQuarantined {
        /// Window the quarantine applied to.
        window: u32,
        /// Number of sites (or samples) contained.
        sites: u64,
    },
    /// A snapshot publish was vetoed (nothing trustworthy to publish).
    PublishVetoed {
        /// First window of the vetoed chunk.
        window: u32,
        /// Why, for the log line.
        reason: &'static str,
    },
    /// The supervisor parked in restart backoff.
    BackoffPark {
        /// Park duration in milliseconds.
        millis: u64,
    },
    /// A shard's derived health state changed.
    HealthTransition {
        /// Shard id.
        shard: u32,
        /// Previous state name.
        from: &'static str,
        /// New state name.
        to: &'static str,
    },
}

impl fmt::Display for FlightEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlightEvent::PanicInjected => write!(f, "panic injected (test hook)"),
            FlightEvent::ServiceRestart { restarts, cause } => {
                write!(f, "service restart #{restarts}: {cause}")
            }
            FlightEvent::ServiceFailed { cause } => {
                write!(f, "service FAILED (restart budget exhausted): {cause}")
            }
            FlightEvent::AggRestart { restarts, cause } => {
                write!(f, "aggregator restart #{restarts}: {cause}")
            }
            FlightEvent::DivergenceQuarantined { window, sites } => {
                write!(f, "window {window}: quarantined {sites} diverged site(s)")
            }
            FlightEvent::PublishVetoed { window, reason } => {
                write!(f, "window {window}: publish vetoed ({reason})")
            }
            FlightEvent::BackoffPark { millis } => {
                write!(f, "supervisor parked {millis} ms in restart backoff")
            }
            FlightEvent::HealthTransition { shard, from, to } => {
                write!(f, "shard {shard}: health {from} -> {to}")
            }
        }
    }
}

/// One ring entry: a sequence number, a stamp (ns since the recorder's
/// epoch), and the event.
#[derive(Clone, Debug, PartialEq)]
pub struct FlightEntry {
    /// Monotone per-recorder sequence number (never reused, so a dump
    /// shows how many older events the ring has already evicted).
    pub seq: u64,
    /// Nanoseconds since the recorder's epoch.
    pub at_ns: u64,
    /// What happened.
    pub event: FlightEvent,
}

struct FlightInner {
    epoch: Instant,
    capacity: usize,
    seq: AtomicU64,
    ring: Mutex<VecDeque<FlightEntry>>,
    sealed: Mutex<Option<String>>,
}

/// Default number of events the ring retains.
pub const DEFAULT_FLIGHT_CAPACITY: usize = 256;

/// The bounded structured-event ring. Cloning shares the ring.
#[derive(Clone)]
pub struct FlightRecorder {
    inner: Arc<FlightInner>,
}

impl Default for FlightRecorder {
    fn default() -> Self {
        FlightRecorder::with_capacity(DEFAULT_FLIGHT_CAPACITY)
    }
}

impl FlightRecorder {
    /// Creates a recorder retaining [`DEFAULT_FLIGHT_CAPACITY`] events.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a recorder retaining the last `capacity` events.
    pub fn with_capacity(capacity: usize) -> Self {
        FlightRecorder {
            inner: Arc::new(FlightInner {
                epoch: Instant::now(),
                capacity: capacity.max(1),
                seq: AtomicU64::new(0),
                ring: Mutex::new(VecDeque::new()),
                sealed: Mutex::new(None),
            }),
        }
    }

    /// Appends an event, evicting the oldest past capacity.
    pub fn record(&self, event: FlightEvent) {
        let entry = FlightEntry {
            seq: self.inner.seq.fetch_add(1, Ordering::Relaxed),
            at_ns: u64::try_from(self.inner.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX),
            event,
        };
        let mut ring = self.inner.ring.lock().unwrap_or_else(|e| e.into_inner());
        if ring.len() == self.inner.capacity {
            ring.pop_front();
        }
        ring.push_back(entry);
    }

    /// A copy of the retained events, oldest first (on-demand dump;
    /// non-destructive).
    pub fn dump(&self) -> Vec<FlightEntry> {
        self.inner
            .ring
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .cloned()
            .collect()
    }

    /// Drains the retained events, leaving the ring empty.
    pub fn drain(&self) -> Vec<FlightEntry> {
        self.inner
            .ring
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .drain(..)
            .collect()
    }

    /// Total events ever recorded (including evicted ones).
    pub fn recorded(&self) -> u64 {
        self.inner.seq.load(Ordering::Relaxed)
    }

    /// Renders entries as one human-readable block, one event per line.
    pub fn render(entries: &[FlightEntry]) -> String {
        let mut out = String::new();
        for e in entries {
            let ms = e.at_ns / 1_000_000;
            out.push_str(&format!(
                "[{:>6}.{:03}s #{}] {}\n",
                ms / 1000,
                ms % 1000,
                e.seq,
                e.event
            ));
        }
        out
    }

    /// Seals the automatic crash dump: renders the current ring and
    /// stores it where [`FlightRecorder::sealed_dump`] can read it later.
    /// Called by supervisors when a service transitions to `Failed`, so
    /// the post-mortem survives even if the ring keeps moving afterwards.
    pub fn seal(&self) -> String {
        let text = Self::render(&self.dump());
        *self.inner.sealed.lock().unwrap_or_else(|e| e.into_inner()) = Some(text.clone());
        text
    }

    /// The dump sealed at the most recent `Failed` transition, if any.
    pub fn sealed_dump(&self) -> Option<String> {
        self.inner
            .sealed
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_is_bounded_and_keeps_sequence() {
        let fr = FlightRecorder::with_capacity(3);
        for i in 0..5 {
            fr.record(FlightEvent::BackoffPark { millis: i });
        }
        let dump = fr.dump();
        assert_eq!(dump.len(), 3);
        assert_eq!(dump[0].seq, 2);
        assert_eq!(dump[2].seq, 4);
        assert_eq!(fr.recorded(), 5);
    }

    #[test]
    fn seal_survives_later_records() {
        let fr = FlightRecorder::new();
        fr.record(FlightEvent::PanicInjected);
        fr.record(FlightEvent::ServiceFailed {
            cause: "injected service panic (test hook)".into(),
        });
        let sealed = fr.seal();
        assert!(sealed.contains("panic injected"));
        assert!(sealed.contains("FAILED"));
        fr.record(FlightEvent::BackoffPark { millis: 1 });
        assert_eq!(fr.sealed_dump().expect("sealed"), sealed);
    }

    #[test]
    fn drain_empties_the_ring() {
        let fr = FlightRecorder::new();
        fr.record(FlightEvent::HealthTransition {
            shard: 3,
            from: "healthy",
            to: "stale",
        });
        let drained = fr.drain();
        assert_eq!(drained.len(), 1);
        assert!(fr.dump().is_empty());
        assert!(FlightRecorder::render(&drained).contains("shard 3"));
    }
}
