//! The unified telemetry plane: metrics, pipeline spans, flight recorder,
//! and exposition.
//!
//! BayesPerf's pitch is trustworthy measurement, which obliges the
//! measurement system to be observable itself. This crate is the one
//! surface every subsystem publishes into:
//!
//! * [`metrics`] — a lock-free [`Registry`] of namespaced counters,
//!   gauges, and fixed-bucket log-scale [`Histogram`]s. Handles are
//!   pre-registered on the cold path; recording is a single relaxed
//!   atomic op (two for histograms) — no allocation, no locks, no
//!   formatting on the hot path;
//! * [`spans`] — pipeline tracing via per-thread ring buffers
//!   ([`SpanTracer`]/[`SpanRecorder`]), so one window's life is
//!   reconstructable ingest → assemble → EP sweep → publish → scrape →
//!   fuse from telemetry alone;
//! * [`flight`] — a bounded [`FlightRecorder`] ring of recent structured
//!   events (restarts, quarantined divergences, health transitions,
//!   vetoed publishes, backoff parks), dumpable on demand and sealed
//!   automatically when a supervised service transitions to `Failed`;
//! * [`expo`] — [`render_prometheus`], the Prometheus-style text encoding
//!   of any metric dump (local or fleet-wide).
//!
//! The [`Telemetry`] bundle ties the three planes to one shared clock
//! epoch; `core::service::Monitor` and `fleet`'s scraper/aggregator each
//! own one and expose it through accessors. Fleet-wide aggregation
//! travels as structured [`MetricSnapshot`] lists over the wire (see
//! `fleet::wire`), merged with [`merge_metrics`], and is rendered to text
//! at the edge.
//!
//! This crate depends only on `std`, so every layer of the workspace can
//! publish into it without dependency cycles.

pub mod expo;
pub mod flight;
pub mod metrics;
pub mod spans;

pub use expo::render_prometheus;
pub use flight::{FlightEntry, FlightEvent, FlightRecorder, DEFAULT_FLIGHT_CAPACITY};
pub use metrics::{
    bucket_index, bucket_upper, labeled, merge_metrics, Counter, Gauge, Histogram,
    HistogramSnapshot, MetricSnapshot, MetricValue, Registry, HISTOGRAM_BUCKETS,
};
pub use spans::{SpanRecord, SpanRecorder, SpanTracer, Stage, DEFAULT_SPAN_CAPACITY};

/// One subsystem's telemetry: a metrics registry, a span tracer, and a
/// flight recorder. Cloning shares all three (they are handles onto the
/// same planes).
#[derive(Clone, Default)]
pub struct Telemetry {
    registry: Registry,
    spans: SpanTracer,
    flight: FlightRecorder,
}

impl Telemetry {
    /// Creates an empty telemetry bundle with default capacities.
    pub fn new() -> Self {
        Self::default()
    }

    /// The metric namespace.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The span plane.
    pub fn spans(&self) -> &SpanTracer {
        &self.spans
    }

    /// The flight recorder.
    pub fn flight(&self) -> &FlightRecorder {
        &self.flight
    }

    /// Renders the current metric dump in the Prometheus text format.
    pub fn prometheus(&self) -> String {
        render_prometheus(&self.registry.snapshot())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn telemetry_bundles_the_three_planes() {
        let tele = Telemetry::new();
        tele.registry().counter("a.b").incr();
        let rec = tele.spans().recorder();
        rec.record(Stage::Ingest, 0, 1, 2);
        tele.flight().record(FlightEvent::PanicInjected);
        assert_eq!(tele.registry().snapshot().len(), 1);
        assert_eq!(tele.spans().records().len(), 1);
        assert_eq!(tele.flight().dump().len(), 1);
        assert!(tele.prometheus().contains("a_b 1"));
    }
}
