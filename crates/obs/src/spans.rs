//! Pipeline tracing: per-thread span ring buffers over the window
//! lifecycle.
//!
//! A [`SpanTracer`] hands each pipeline thread its own [`SpanRecorder`]
//! (a fixed ring of seqlocked slots). Recording a span is a handful of
//! relaxed stores into the ring — no allocation, no locks, no formatting
//! — so the service and scrape hot paths can be instrumented always-on.
//! [`SpanTracer::records`] drains every ring non-destructively (skipping
//! any slot that is mid-write) and [`SpanTracer::for_window`] filters to
//! one window index, which is how a window's life is reconstructed
//! ingest → assemble → EP sweep → publish → scrape → fuse from telemetry
//! alone.
//!
//! Timestamps are nanoseconds since the tracer's epoch (a monotonic
//! [`Instant`] taken at construction), so spans from different threads of
//! the same tracer are directly comparable.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// A stage of a window's life through the pipeline.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Stage {
    /// Samples for the window arriving at the service inbox.
    Ingest = 0,
    /// The window sitting assembled, waiting to fill a chunk.
    Assemble = 1,
    /// The EP corrector sweeping the chunk containing the window.
    EpSweep = 2,
    /// The posterior snapshot for the window being published.
    Publish = 3,
    /// A scrape exchange carrying the window's snapshot off-box.
    Scrape = 4,
    /// Fleet-level fusion absorbing the window's snapshot.
    Fuse = 5,
}

impl Stage {
    /// Stable lowercase name (log lines, exposition).
    pub fn name(self) -> &'static str {
        match self {
            Stage::Ingest => "ingest",
            Stage::Assemble => "assemble",
            Stage::EpSweep => "ep_sweep",
            Stage::Publish => "publish",
            Stage::Scrape => "scrape",
            Stage::Fuse => "fuse",
        }
    }

    fn from_u8(v: u8) -> Option<Stage> {
        Some(match v {
            0 => Stage::Ingest,
            1 => Stage::Assemble,
            2 => Stage::EpSweep,
            3 => Stage::Publish,
            4 => Stage::Scrape,
            5 => Stage::Fuse,
            _ => return None,
        })
    }
}

/// One recorded span: a stage of one window's life with start/stop
/// stamps in tracer-epoch nanoseconds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpanRecord {
    /// Pipeline stage.
    pub stage: Stage,
    /// Window index the span is about.
    pub window: u32,
    /// Start stamp, ns since the tracer epoch.
    pub start_ns: u64,
    /// Stop stamp, ns since the tracer epoch.
    pub end_ns: u64,
}

/// One ring slot, seqlocked: `seq` is odd while the writer is mid-store,
/// and bumps by 2 per publish, so a reader can detect (and skip) a torn
/// read without ever blocking the writer.
struct Slot {
    seq: AtomicU64,
    stage: AtomicU64,
    window: AtomicU64,
    start: AtomicU64,
    end: AtomicU64,
}

struct Ring {
    head: AtomicU64,
    slots: Box<[Slot]>,
}

impl Ring {
    fn new(capacity: usize) -> Ring {
        Ring {
            head: AtomicU64::new(0),
            slots: (0..capacity)
                .map(|_| Slot {
                    seq: AtomicU64::new(0),
                    stage: AtomicU64::new(0),
                    window: AtomicU64::new(0),
                    start: AtomicU64::new(0),
                    end: AtomicU64::new(0),
                })
                .collect(),
        }
    }
}

struct TracerInner {
    epoch: Instant,
    capacity: usize,
    rings: Mutex<Vec<Arc<Ring>>>,
}

/// Default per-thread ring capacity (spans kept per recorder).
pub const DEFAULT_SPAN_CAPACITY: usize = 4096;

/// The span plane: hands out per-thread recorders and reconstructs the
/// recorded spans. Cloning shares the plane.
#[derive(Clone)]
pub struct SpanTracer {
    inner: Arc<TracerInner>,
}

impl Default for SpanTracer {
    fn default() -> Self {
        SpanTracer::with_capacity(DEFAULT_SPAN_CAPACITY)
    }
}

impl SpanTracer {
    /// Creates a tracer whose recorders keep the default number of spans.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a tracer whose recorders each keep the last `capacity`
    /// spans.
    pub fn with_capacity(capacity: usize) -> Self {
        SpanTracer {
            inner: Arc::new(TracerInner {
                epoch: Instant::now(),
                capacity: capacity.max(1),
                rings: Mutex::new(Vec::new()),
            }),
        }
    }

    /// Nanoseconds since the tracer epoch (saturates at `u64::MAX`).
    #[inline]
    pub fn now_ns(&self) -> u64 {
        u64::try_from(self.inner.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// Registers a new per-thread recorder ring (cold path: takes the
    /// tracer's registration lock once).
    pub fn recorder(&self) -> SpanRecorder {
        let ring = Arc::new(Ring::new(self.inner.capacity));
        self.inner
            .rings
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(ring.clone());
        SpanRecorder {
            ring,
            epoch: self.inner.epoch,
        }
    }

    /// All currently readable spans across every recorder, sorted by
    /// start stamp. Non-destructive; slots being overwritten concurrently
    /// are skipped, never torn.
    pub fn records(&self) -> Vec<SpanRecord> {
        let rings: Vec<Arc<Ring>> = self
            .inner
            .rings
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone();
        let mut out = Vec::new();
        for ring in rings {
            let head = ring.head.load(Ordering::Acquire);
            let cap = ring.slots.len() as u64;
            let live = head.min(cap);
            for k in 0..live {
                let slot = &ring.slots[((head - live + k) % cap) as usize];
                let s1 = slot.seq.load(Ordering::Acquire);
                if s1 % 2 == 1 {
                    continue; // mid-write
                }
                let stage = slot.stage.load(Ordering::Relaxed);
                let window = slot.window.load(Ordering::Relaxed);
                let start = slot.start.load(Ordering::Relaxed);
                let end = slot.end.load(Ordering::Relaxed);
                if slot.seq.load(Ordering::Acquire) != s1 {
                    continue; // overwritten while reading
                }
                if let Some(stage) = Stage::from_u8(stage as u8) {
                    out.push(SpanRecord {
                        stage,
                        window: window as u32,
                        start_ns: start,
                        end_ns: end,
                    });
                }
            }
        }
        out.sort_by_key(|r| (r.start_ns, r.end_ns));
        out
    }

    /// The spans recorded about one window index, in pipeline order
    /// (by start stamp).
    pub fn for_window(&self, window: u32) -> Vec<SpanRecord> {
        let mut v = self.records();
        v.retain(|r| r.window == window);
        v
    }
}

/// A single-thread span writer into its own ring. Obtain one per pipeline
/// thread via [`SpanTracer::recorder`]; recording never allocates, locks,
/// or formats.
///
/// Cloning shares the ring: clones exist so a supervisor can hand the
/// same ring to successive service incarnations (which run serially on
/// one thread). Two clones recording **concurrently** would race the ring
/// head and overwrite each other's slots — never share a recorder across
/// simultaneously live threads; take one per thread from the tracer.
#[derive(Clone)]
pub struct SpanRecorder {
    ring: Arc<Ring>,
    epoch: Instant,
}

impl SpanRecorder {
    /// Nanoseconds since the owning tracer's epoch.
    #[inline]
    pub fn now_ns(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// Records one completed span.
    #[inline]
    pub fn record(&self, stage: Stage, window: u32, start_ns: u64, end_ns: u64) {
        let head = self.ring.head.load(Ordering::Relaxed);
        let slot = &self.ring.slots[(head % self.ring.slots.len() as u64) as usize];
        let seq = slot.seq.load(Ordering::Relaxed);
        slot.seq.store(seq.wrapping_add(1), Ordering::Release); // odd: mid-write
        slot.stage.store(stage as u8 as u64, Ordering::Relaxed);
        slot.window.store(window as u64, Ordering::Relaxed);
        slot.start.store(start_ns, Ordering::Relaxed);
        slot.end.store(end_ns, Ordering::Relaxed);
        slot.seq.store(seq.wrapping_add(2), Ordering::Release); // even: published
        self.ring.head.store(head + 1, Ordering::Release);
    }

    /// Convenience: stamps `start..now` for `stage` on `window`.
    #[inline]
    pub fn record_since(&self, stage: Stage, window: u32, start_ns: u64) {
        self.record(stage, window, start_ns, self.now_ns());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_roundtrip_in_order() {
        let tracer = SpanTracer::new();
        let rec = tracer.recorder();
        rec.record(Stage::Ingest, 7, 10, 20);
        rec.record(Stage::EpSweep, 7, 30, 90);
        rec.record(Stage::Publish, 8, 95, 99);
        let spans = tracer.for_window(7);
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].stage, Stage::Ingest);
        assert_eq!(spans[1].stage, Stage::EpSweep);
        assert_eq!(spans[1].end_ns, 90);
        assert_eq!(tracer.records().len(), 3);
    }

    #[test]
    fn ring_keeps_the_most_recent_spans() {
        let tracer = SpanTracer::with_capacity(4);
        let rec = tracer.recorder();
        for i in 0..10u32 {
            rec.record(Stage::Ingest, i, i as u64, i as u64 + 1);
        }
        let spans = tracer.records();
        assert_eq!(spans.len(), 4);
        assert_eq!(spans[0].window, 6);
        assert_eq!(spans[3].window, 9);
    }

    #[test]
    fn recorders_are_per_thread_and_merge() {
        let tracer = SpanTracer::new();
        let t2 = tracer.clone();
        let h = std::thread::spawn(move || {
            let rec = t2.recorder();
            for i in 0..100u32 {
                rec.record(Stage::Scrape, i, 1000 + i as u64, 1001 + i as u64);
            }
        });
        let rec = tracer.recorder();
        for i in 0..100u32 {
            rec.record(Stage::Publish, i, i as u64, i as u64 + 1);
        }
        h.join().expect("recorder thread");
        let spans = tracer.records();
        assert_eq!(spans.len(), 200);
        // Sorted by start stamp across rings.
        assert!(spans.windows(2).all(|w| w[0].start_ns <= w[1].start_ns));
    }

    #[test]
    fn stamps_are_monotone() {
        let tracer = SpanTracer::new();
        let rec = tracer.recorder();
        let a = rec.now_ns();
        let b = tracer.now_ns();
        assert!(b >= a);
        rec.record_since(Stage::Fuse, 1, a);
        let s = tracer.for_window(1);
        assert_eq!(s.len(), 1);
        assert!(s[0].end_ns >= s[0].start_ns);
    }
}
