//! Cross-crate integration tests: the full BayesPerf pipeline.

use bayesperf::baselines::{LinuxScaling, SeriesEstimator};
use bayesperf::core::corrector::{Corrector, CorrectorConfig};
use bayesperf::core::metrics::dtw_relative_error;
use bayesperf::core::scheduler::ScheduleTransformer;
use bayesperf::core::shim::{BayesPerfShim, HpcReader, LinuxReader};
use bayesperf::events::{try_assign, Arch, Catalog};
use bayesperf::simcpu::{Pmu, PmuConfig};
use bayesperf::workloads::{all_workloads, by_name};

/// The headline claim, end to end: on a phase-structured workload with
/// multiplexed counters, BayesPerf's posterior series has lower DTW error
/// against ground truth than Linux scaling — on both architectures.
#[test]
fn bayesperf_beats_linux_on_both_architectures() {
    for arch in Arch::all() {
        let catalog = Catalog::new(arch);
        let workload = by_name("ALS").expect("in suite");
        let mut truth = workload.instantiate(&catalog, 3);

        let transformer = ScheduleTransformer::new(&catalog);
        let events: Vec<_> = catalog.programmable_events().into_iter().take(16).collect();
        let schedule = transformer.plan(&events);
        let pmu = Pmu::new(&catalog, PmuConfig::for_catalog(&catalog));
        let run = pmu.run_multiplexed(&mut truth, &schedule.configs, 24);

        let mut corrector = Corrector::new(&catalog, CorrectorConfig::for_run(&run));
        let posterior = corrector.correct_run(&run);
        let linux = LinuxScaling::new();

        let mut err_bayes = 0.0;
        let mut err_linux = 0.0;
        for &ev in &events {
            let truth_series = run.truth_series(ev);
            err_bayes += dtw_relative_error(&posterior.mle_series(ev), &truth_series, 4);
            err_linux += dtw_relative_error(&linux.estimate(&run, ev), &truth_series, 4);
        }
        assert!(
            err_bayes < err_linux,
            "{arch}: BayesPerf {err_bayes:.3} should beat Linux {err_linux:.3}"
        );
    }
}

/// The shim is API-compatible: the same monitoring loop runs against the
/// Linux reader and the BayesPerf shim, and only BayesPerf quantifies
/// uncertainty.
#[test]
fn shim_is_a_drop_in_replacement() {
    let catalog = Catalog::new(Arch::X86SkyLake);
    let mut truth = by_name("Join").expect("in suite").instantiate(&catalog, 1);
    let events: Vec<_> = catalog.programmable_events().into_iter().take(8).collect();
    let transformer = ScheduleTransformer::new(&catalog);
    let schedule = transformer.plan(&events);
    let pmu = Pmu::new(&catalog, PmuConfig::for_catalog(&catalog));
    let run = pmu.run_multiplexed(&mut truth, &schedule.configs, 12);

    fn monitor(reader: &mut dyn HpcReader, run: &bayesperf::simcpu::MultiplexRun) -> usize {
        for w in &run.windows {
            for s in &w.samples {
                reader.push_sample(*s);
            }
        }
        run.windows[0]
            .samples
            .iter()
            .filter(|s| reader.read(s.event).is_some())
            .count()
    }

    let mut linux = LinuxReader::new();
    let mut shim = BayesPerfShim::new(&catalog, CorrectorConfig::for_run(&run), 1 << 14);
    let linux_reads = monitor(&mut linux, &run);
    let shim_reads = monitor(&mut shim, &run);
    assert!(linux_reads > 0);
    assert_eq!(linux_reads, shim_reads, "same events readable through both");

    let ev = run.windows[0].samples[3].event;
    let lr = linux.read(ev).expect("linux read");
    let br = shim.read(ev).expect("shim read");
    assert_eq!(lr.std_dev, 0.0, "perf reports point values");
    assert!(br.std_dev > 0.0, "BayesPerf quantifies uncertainty");
}

/// Every workload in the suite yields a valid, fully-linked BayesPerf
/// schedule for the derived-event HPC set, on both architectures.
#[test]
fn schedules_are_valid_for_the_whole_suite() {
    for arch in Arch::all() {
        let catalog = Catalog::new(arch);
        let transformer = ScheduleTransformer::new(&catalog);
        let mut events = Vec::new();
        for d in catalog.derived_events() {
            events.extend(d.events());
        }
        events.sort();
        events.dedup();
        events.retain(|&e| catalog.event(e).is_programmable());
        let schedule = transformer.plan(&events);
        for cfg in &schedule.configs {
            assert!(try_assign(&catalog, cfg.events(), &catalog.pmu()).is_ok());
        }
        // Every requested event is still measured.
        for &e in &events {
            assert!(
                schedule.configs.iter().any(|c| c.contains(e)),
                "{arch}: event {e} lost"
            );
        }
    }
}

/// Ground truth from every workload satisfies every exact invariant on
/// every tick we sample — across the whole suite and both catalogs.
#[test]
fn suite_ground_truth_respects_invariants() {
    use bayesperf::simcpu::GroundTruth;
    for arch in Arch::all() {
        let catalog = Catalog::new(arch);
        let mut rates = vec![0.0; catalog.len()];
        for program in all_workloads().iter().take(6) {
            let mut w = program.instantiate(&catalog, 9);
            for tick in [0u64, 41, 137] {
                w.rates_at(tick, &mut rates);
                for inv in catalog.invariants().iter().filter(|i| i.is_exact()) {
                    assert!(
                        inv.relative_residual(&rates).abs() < 1e-9,
                        "{}: {} violated",
                        program.name(),
                        inv.name
                    );
                }
            }
        }
    }
}

/// The accelerator keeps inference off the read path: posteriors computed
/// by the software shim match a fresh corrector run (the accelerator is
/// modelled as the same computation at lower latency).
#[test]
fn shim_posteriors_match_batch_correction() {
    let catalog = Catalog::new(Arch::X86SkyLake);
    let mut truth = by_name("Scan").expect("in suite").instantiate(&catalog, 5);
    let events: Vec<_> = catalog.programmable_events().into_iter().take(8).collect();
    let transformer = ScheduleTransformer::new(&catalog);
    let schedule = transformer.plan(&events);
    let pmu = Pmu::new(&catalog, PmuConfig::for_catalog(&catalog));
    // 8 windows: the shim completes a window only when a later window's
    // sample arrives, so 8 recorded windows yield one full 6-window chunk.
    let run = pmu.run_multiplexed(&mut truth, &schedule.configs, 8);

    let cfg = CorrectorConfig::for_run(&run);
    let mut corrector = Corrector::new(&catalog, cfg.clone());
    let series = corrector.correct_run(&run);

    let mut shim = BayesPerfShim::new(&catalog, cfg, 1 << 14);
    for w in &run.windows {
        for s in &w.samples {
            shim.push_sample(*s);
        }
    }
    let ev = events[0];
    let shim_read = shim.read(ev).expect("posterior available");
    let batch = series.posterior(5, ev);
    assert!(
        (shim_read.value - batch.mean).abs() < 1e-6 * batch.mean.abs().max(1.0),
        "shim {} vs batch {}",
        shim_read.value,
        batch.mean
    );
}
