//! Closed-loop acceptance for the uncertainty-driven multiplexing
//! scheduler (ISSUE 5): on the simcpu kmeans workload at an equal sample
//! budget, `UncertaintyDriven` must achieve strictly lower mean posterior
//! variance than `RoundRobin`, and the loop must be deterministic.

use bayesperf::core::corrector::CorrectorConfig;
use bayesperf::events::{Arch, Catalog};
use bayesperf::mlsched::mux::{
    hetero_demo_events, run_closed_loop, ClosedLoopReport, GroupSchedule, MuxPolicy, RoundRobin,
    UncertaintyDriven,
};
use bayesperf::simcpu::{Pmu, PmuConfig};
use bayesperf::workloads::kmeans;

fn closed_loop(
    cat: &Catalog,
    seed: u64,
    n_windows: usize,
    policy: Box<dyn MuxPolicy>,
) -> ClosedLoopReport {
    // The canonical heterogeneous fixture (weakly-anchored TLB/branch
    // group, cache hierarchy, invariant-pinned µop pipeline) — shared
    // with the example and bench_json so all three measure the same
    // schedule.
    let schedule =
        GroupSchedule::from_events(cat, &hetero_demo_events(cat), 6).expect("groups fit");
    let pmu_cfg = PmuConfig {
        seed,
        ..PmuConfig::for_catalog(cat)
    };
    let probe = Pmu::new(cat, PmuConfig::for_catalog(cat)).run_polling(
        &mut kmeans().instantiate(cat, seed),
        &[],
        1,
    );
    let mut truth = kmeans().instantiate(cat, seed);
    run_closed_loop(
        cat,
        &mut truth,
        pmu_cfg,
        schedule,
        policy,
        CorrectorConfig::for_run(&probe),
        n_windows,
    )
}

#[test]
fn uncertainty_beats_round_robin_at_equal_budget_on_kmeans() {
    let cat = Catalog::new(Arch::X86SkyLake);
    let n_windows = 36;
    let rr = closed_loop(&cat, 0, n_windows, Box::new(RoundRobin));
    let ud = closed_loop(&cat, 0, n_windows, Box::new(UncertaintyDriven::default()));

    // Equal budget by construction: same windows, one group per quantum.
    assert_eq!(rr.decisions.len(), n_windows);
    assert_eq!(ud.decisions.len(), n_windows);
    assert_eq!(
        rr.group_runs.iter().sum::<u32>(),
        ud.group_runs.iter().sum::<u32>()
    );

    // The acceptance bar: strictly lower mean posterior variance.
    assert!(
        ud.mean_rel_var < rr.mean_rel_var,
        "uncertainty-driven {:.5} must beat round-robin {:.5}",
        ud.mean_rel_var,
        rr.mean_rel_var
    );

    // The starvation bound held throughout: every group ran in every
    // window of K consecutive quanta.
    let k = 6;
    let decisions: Vec<usize> = ud.decisions.iter().map(|&d| d as usize).collect();
    for window in decisions.windows(k) {
        for group in 0..rr.group_runs.len() {
            assert!(window.contains(&group), "group {group} starved: {window:?}");
        }
    }
}

#[test]
fn closed_loop_is_deterministic_for_a_fixed_seed() {
    let cat = Catalog::new(Arch::X86SkyLake);
    let a = closed_loop(&cat, 7, 18, Box::new(UncertaintyDriven::default()));
    let b = closed_loop(&cat, 7, 18, Box::new(UncertaintyDriven::default()));
    assert_eq!(a.decisions, b.decisions, "identical decision sequences");
    assert_eq!(a.mean_rel_var.to_bits(), b.mean_rel_var.to_bits());
    assert_eq!(a.group_runs, b.group_runs);
    // A different seed actually changes the trajectory (the test would be
    // vacuous if the loop ignored its inputs).
    let c = closed_loop(&cat, 8, 18, Box::new(UncertaintyDriven::default()));
    assert_ne!(a.mean_rel_var.to_bits(), c.mean_rel_var.to_bits());
}
