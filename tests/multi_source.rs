//! Acceptance tests for the multi-source observation plane: one factor
//! graph fusing a multiplexed PMU with soft gauge sources at different
//! cadences.
//!
//! The scenarios mirror the deployment the subsystem targets — a PMU
//! stream plus slower out-of-band gauges (disk ops, disk bytes, package
//! power) all feeding one `Monitor` — and assert the fusion contract:
//!
//! * posteriors for cross-source derived events stay finite and carry
//!   real uncertainty;
//! * adding gauge sources *tightens* gauge-event posteriors versus a
//!   PMU-only run (the gauges are evidence, not decoration);
//! * a seeded data-fault burst on any single source *widens* — never
//!   corrupts, never oversharpens — the fused posterior.

use bayesperf::core::corrector::CorrectorConfig;
use bayesperf::core::service::Monitor;
use bayesperf::core::source::pump_sources;
use bayesperf::events::{Arch, Catalog, Semantic};
use bayesperf::simcpu::{
    pack_round_robin, DataFaultProfile, GaugeProfile, Pmu, PmuConfig, SampleSource, SimGauge,
};
use bayesperf::workloads::kmeans;

const WINDOWS: usize = 18;
const RUN_SEED: u64 = 3;

/// A fault profile hot enough that a handful of slow-cadence gauge
/// samples is guaranteed to include faulted ones (the stock `noisy`
/// rates are per-sample ~2%, which a 16×-cadence source can dodge).
fn hot_faults(seed: u64) -> DataFaultProfile {
    DataFaultProfile {
        nan_prob: 0.10,
        inf_prob: 0.05,
        corrupt_prob: 0.35,
        corrupt_scale: 1.0e9,
        stuck_prob: 0.15,
        sub_nan_prob: 0.10,
        seed,
    }
}

struct Fused {
    /// `(value, std_dev)` of the two cross-source derived events.
    bytes_per_iop: (f64, f64),
    ipc_per_watt: (f64, f64),
    /// Mean posterior standard deviation over the gauge events.
    gauge_sd: f64,
    /// Total and per-source late-drop counters at the end of the run.
    late: u64,
}

/// Runs the full pipeline: PMU multiplexing over the IIO/uop events the
/// cross-source invariants couple to, plus (optionally) every simulated
/// gauge source in the catalog, with `faulted` selecting one gauge (by
/// position among the non-PMU sources) to run through a data-fault layer.
fn run_scenario(with_gauges: bool, faulted: Option<usize>) -> Fused {
    let cat = Catalog::with_observation_plane(Arch::X86SkyLake);
    let mut truth = kmeans().instantiate(&cat, RUN_SEED);
    let events = vec![
        cat.require(Semantic::IioRdTotal),
        cat.require(Semantic::IioWrTotal),
        cat.require(Semantic::UopsIssued),
        cat.require(Semantic::L1dMisses),
    ];
    let schedule = pack_round_robin(&cat, &events).expect("schedule fits");
    let pmu_cfg = PmuConfig::for_catalog(&cat);
    let pmu = Pmu::new(&cat, pmu_cfg);
    let run = pmu.run_multiplexed(&mut truth, &schedule, WINDOWS);

    let monitor =
        Monitor::new(&cat, CorrectorConfig::for_run(&run), 1 << 14).expect("spawn monitor");
    let session = monitor.session().open().expect("open session");

    let mut sources: Vec<Box<dyn SampleSource + '_>> = if with_gauges {
        cat.sources()[1..]
            .iter()
            .enumerate()
            .map(|(i, desc)| {
                // Each gauge owns its own (identical, deterministic)
                // truth instance; distinct seeds give distinct noise.
                let gauge = SimGauge::new(
                    &cat,
                    desc.id,
                    GaugeProfile::for_source(desc, 11 + i as u64),
                    &pmu_cfg,
                    kmeans().instantiate(&cat, RUN_SEED),
                )
                .expect("gauge source");
                let gauge = if faulted == Some(i) {
                    gauge.with_faults(hot_faults(97))
                } else {
                    gauge
                };
                Box::new(gauge) as Box<dyn SampleSource + '_>
            })
            .collect()
    } else {
        Vec::new()
    };

    for (w, win) in run.windows.iter().enumerate() {
        for s in &win.samples {
            monitor.push_sample(*s).expect("push");
        }
        pump_sources(&monitor, &mut sources, w as u32).expect("pump");
    }
    monitor.sync().expect("sync");
    monitor.flush().expect("flush");

    let read = |name: &str| {
        let r = session.read_derived(name).expect("derived read");
        assert!(
            r.value.is_finite() && r.std_dev.is_finite(),
            "{name}: non-finite reading"
        );
        (r.value, r.std_dev)
    };
    let bytes_per_iop = read("Bytes_per_IOP");
    let ipc_per_watt = read("IPC_per_Watt");

    let mut gauge_sd = 0.0;
    for &sem in Semantic::gauges() {
        let r = session.read(cat.require(sem)).expect("gauge read");
        assert!(
            r.value.is_finite() && r.std_dev.is_finite() && r.std_dev > 0.0,
            "{sem:?}: posterior must be finite with real uncertainty"
        );
        gauge_sd += r.std_dev;
    }
    gauge_sd /= Semantic::gauges().len() as f64;

    Fused {
        bytes_per_iop,
        ipc_per_watt,
        gauge_sd,
        late: monitor.late_samples(),
    }
}

/// The headline scenario: PMU + three gauges at 4×/8×/16× cadence fuse
/// into finite cross-source posteriors, and the gauges tighten the gauge
/// events versus a PMU-only run of the same workload.
#[test]
fn fused_posteriors_are_finite_and_tighter_than_pmu_only() {
    let pmu_only = run_scenario(false, None);
    let fused = run_scenario(true, None);

    for (name, (value, sd)) in [
        ("Bytes_per_IOP", fused.bytes_per_iop),
        ("IPC_per_Watt", fused.ipc_per_watt),
    ] {
        assert!(value > 0.0, "{name}: expected a positive point estimate");
        assert!(sd > 0.0, "{name}: expected nonzero posterior spread");
    }
    // Disk IO is 4 KiB-op dominated in the synthetic truth, so the fused
    // estimate must land in the right order of magnitude.
    let (bpi, _) = fused.bytes_per_iop;
    assert!(
        (500.0..40_000.0).contains(&bpi),
        "Bytes_per_IOP way off: {bpi}"
    );
    // With zero gauge observations the gauge events are anchored only by
    // invariants; real gauge evidence must tighten them, never the
    // reverse (the bench gate asserts the same ratio ≤ 1).
    assert!(
        fused.gauge_sd <= pmu_only.gauge_sd,
        "fusing gauges must tighten gauge posteriors: fused {} vs pmu-only {}",
        fused.gauge_sd,
        pmu_only.gauge_sd
    );
}

/// Faulting any single source widens — never corrupts — the fused
/// posterior: every reading stays finite, and the mean gauge-event
/// spread never comes out *sharper* than the all-healthy run (a faulted
/// stream must not manufacture confidence).
#[test]
fn a_seeded_fault_on_any_single_source_widens_never_corrupts() {
    let healthy = run_scenario(true, None);
    let n_gauges = Catalog::with_observation_plane(Arch::X86SkyLake)
        .sources()
        .len()
        - 1;
    assert!(n_gauges >= 2, "need at least two gauge sources");
    for faulted in 0..n_gauges {
        let f = run_scenario(true, Some(faulted));
        // Finiteness is asserted inside run_scenario; here: no
        // oversharpening. Allow float-level slack only.
        assert!(
            f.gauge_sd >= healthy.gauge_sd * 0.999,
            "fault on gauge {faulted} oversharpened: {} vs healthy {}",
            f.gauge_sd,
            healthy.gauge_sd
        );
        assert!(
            f.bytes_per_iop.0.is_finite() && f.ipc_per_watt.0.is_finite(),
            "fault on gauge {faulted} corrupted a derived posterior"
        );
    }
}

/// Slow-cadence sources racing the PMU stream are absorbed or counted,
/// never lost silently: with the per-window pump the whole run stays
/// late-free, and the counters exist (and are zero) per source.
#[test]
fn interleaved_pumping_produces_no_late_drops() {
    let fused = run_scenario(true, None);
    assert_eq!(fused.late, 0, "in-order pumping must never drop samples");
}
