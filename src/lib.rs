//! # BayesPerf
//!
//! Facade crate for the BayesPerf workspace — a reproduction of
//! *"BayesPerf: Minimizing Performance Monitoring Errors Using Bayesian
//! Statistics"* (ASPLOS 2021).
//!
//! Re-exports every component crate under one roof so examples and
//! downstream users need a single dependency:
//!
//! * [`events`] — event catalogs, microarchitectural invariants, derived events
//! * [`simcpu`] — PMU + multiplexing + sampling simulator
//! * [`workloads`] — HiBench-like phase-structured workload generators
//! * [`graph`] — factor graphs and Markov blankets
//! * [`inference`] — distributions, MCMC, Expectation Propagation
//! * [`core`] — scheduling, model building, the corrector, the perf-like shim
//! * [`fleet`] — sharded monitors, precision-weighted posterior fusion,
//!   the snapshot wire codec
//! * [`obs`] — the telemetry plane: lock-free metrics registry, pipeline
//!   tracing spans, flight recorder, Prometheus-style exposition
//! * [`baselines`] — Linux scaling, CounterMiner, WM+Pin
//! * [`accel`] — the accelerator discrete-event simulation + area/power model
//! * [`mlsched`] — PCIe contention sim + ML scheduler case study

// The session API's front door, re-exported at the crate root so
// monitoring applications can `use bayesperf::{Monitor, Session}`.
pub use bayesperf_core::{
    GroupReading, HpcReader, Monitor, PosteriorUpdate, Reading, Session, SessionBuilder, ShimError,
};
// The fleet layer's front door: sharded monitors with fused reads.
pub use bayesperf_fleet::{Fleet, FleetConfig, FleetSession, ShardId, ShardLabel};

pub use bayesperf_accel as accel;
pub use bayesperf_baselines as baselines;
pub use bayesperf_core as core;
pub use bayesperf_events as events;
pub use bayesperf_fleet as fleet;
pub use bayesperf_graph as graph;
pub use bayesperf_inference as inference;
pub use bayesperf_mlsched as mlsched;
pub use bayesperf_obs as obs;
pub use bayesperf_simcpu as simcpu;
pub use bayesperf_workloads as workloads;
