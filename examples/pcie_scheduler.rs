//! The §6.3 case study in miniature: train the actor-critic NIC scheduler
//! with Linux-quality and BayesPerf-quality HPC inputs and compare
//! convergence and decision quality.
//!
//! Run with: `cargo run --release --example pcie_scheduler`

use bayesperf::mlsched::pcie::{Fabric, Flow, Node};
use bayesperf::mlsched::rl::{CorrectionQuality, Trainer};

fn main() {
    // The Fig. 9 phenomenon: contention halves large-message bandwidth.
    let fabric = Fabric::standard();
    let halo = Flow {
        src: Node::Gpu(1),
        dst: Node::Gpu(2),
    };
    let shuffle = Flow {
        src: Node::Nic(0),
        dst: Node::Cpu(1),
    };
    let size = (1u64 << 20) as f64;
    println!(
        "1 MiB messages: isolated {:.1} GB/s, under contention {:.1} GB/s",
        fabric.observed_bandwidth(&[halo], 0, size),
        fabric.observed_bandwidth(&[halo, shuffle], 0, size)
    );

    println!("\ntraining the NIC scheduler (4000 iterations each)...");
    for q in [CorrectionQuality::Linux, CorrectionQuality::BayesPerfAccel] {
        let mut trainer = Trainer::new(q, 42);
        let result = trainer.train(4000);
        let eval = trainer.evaluate(1000);
        println!(
            "{:<16} final loss {:.3}, makespan improvement vs static NIC: {:+.1}%",
            q.label(),
            result.final_loss,
            100.0 * eval.improvement_vs_static()
        );
    }
}
