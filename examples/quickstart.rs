//! Quickstart: monitor a workload with multiplexed counters, correct the
//! measurements with BayesPerf, and compare against Linux scaling.
//!
//! Run with: `cargo run --release --example quickstart`

use bayesperf::baselines::{LinuxScaling, SeriesEstimator};
use bayesperf::core::corrector::{Corrector, CorrectorConfig};
use bayesperf::core::scheduler::ScheduleTransformer;
use bayesperf::events::{Arch, Catalog, Semantic};
use bayesperf::simcpu::{Pmu, PmuConfig};
use bayesperf::workloads::by_name;

fn main() {
    // 1. A Sky Lake-like CPU and the TeraSort workload.
    let catalog = Catalog::new(Arch::X86SkyLake);
    let workload = by_name("TeraSort").expect("TeraSort is in the suite");
    let mut truth = workload.instantiate(&catalog, 0);

    // 2. Pick events: the cache hierarchy plus branches (8 events on 4
    //    counters -> multiplexing).
    let events: Vec<_> = [
        Semantic::L1dMisses,
        Semantic::IcacheMisses,
        Semantic::L2References,
        Semantic::L2Misses,
        Semantic::LlcHits,
        Semantic::LlcMisses,
        Semantic::BrInst,
        Semantic::BrMisp,
    ]
    .iter()
    .map(|&s| catalog.require(s))
    .collect();

    // 3. Build a BayesPerf schedule (invariant-aware interleaving +
    //    overlap links) and record a run.
    let transformer = ScheduleTransformer::new(&catalog);
    let schedule = transformer.plan(&events);
    println!(
        "schedule: {} configurations, {} overlaps inserted, fully linked: {}",
        schedule.configs.len(),
        schedule.overlaps_inserted,
        schedule.fully_linked()
    );
    let pmu = Pmu::new(&catalog, PmuConfig::for_catalog(&catalog));
    let run = pmu.run_multiplexed(&mut truth, &schedule.configs, 24);

    // 4. Correct the run; compare per-window estimates against the
    //    simulator's ground truth for one event.
    let mut corrector = Corrector::new(&catalog, CorrectorConfig::for_run(&run));
    let posterior = corrector.correct_run(&run);
    let ev = catalog.require(Semantic::LlcMisses);
    let bayes = posterior.mle_series(ev);
    let sd = posterior.sd_series(ev);
    let linux = LinuxScaling::new().estimate(&run, ev);
    let truth_series = run.truth_series(ev);

    println!("\nwindow  truth        linux        bayesperf    (posterior sd)");
    let mut err_l = 0.0;
    let mut err_b = 0.0;
    for w in 0..run.windows.len() {
        err_l += (linux[w] - truth_series[w]).abs() / truth_series[w].max(1.0);
        err_b += (bayes[w] - truth_series[w]).abs() / truth_series[w].max(1.0);
        if w % 4 == 0 {
            println!(
                "{w:>6}  {:>11.0}  {:>11.0}  {:>11.0}  (+-{:.0})",
                truth_series[w], linux[w], bayes[w], sd[w]
            );
        }
    }
    let n = run.windows.len() as f64;
    println!(
        "\nmean relative error: Linux {:.1}%, BayesPerf {:.1}%",
        100.0 * err_l / n,
        100.0 * err_b / n
    );
}
