//! The networked scrape plane end to end: six shard monitors served
//! through scrape responders — one over a real TCP socket, the rest
//! behind seeded lossy links — polled by a `FleetScraper` with
//! deadlines, retries and backoff, and fused with staleness-aware
//! variance inflation. Closes with the telemetry plane: a fleet-wide
//! registry pull over the wire, cumulative scrape totals through a
//! scraper-backed `FleetSession`, and the scrape/fuse span counts.
//!
//! Run with: `cargo run --release --example fleet_net`

use bayesperf::core::corrector::CorrectorConfig;
use bayesperf::events::{Arch, Catalog, Semantic};
use bayesperf::fleet::{
    FleetScraper, HealthState, ScrapeConfig, ScrapeResponder, ScrapeServer, ShardId, ShardLabel,
    SimTransport, TcpTransport,
};
use bayesperf::obs::{render_prometheus, Stage};
use bayesperf::simcpu::{
    pack_round_robin, CorrelatedTruth, LinkProfile, LinkState, Pmu, PmuConfig, ShardProfile,
};
use bayesperf::workloads::by_name;
use bayesperf::Monitor;
use std::sync::Arc;
use std::time::Duration;

const WINDOWS: usize = 12;
const SHARDS: u32 = 6;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let catalog = Catalog::new(Arch::X86SkyLake);
    let events: Vec<_> = [
        Semantic::L1dMisses,
        Semantic::LlcHits,
        Semantic::LlcMisses,
        Semantic::BrMisp,
    ]
    .iter()
    .map(|&s| catalog.require(s))
    .collect();
    let schedule = pack_round_robin(&catalog, &events)?;

    // Shard monitors: one Monitor per simulated machine, each running a
    // distinct-but-correlated variant of the reference workload.
    let base_cfg = PmuConfig::for_catalog(&catalog);
    let mut monitors = Vec::new();
    let mut corrector: Option<CorrectorConfig> = None;
    for shard in 0..SHARDS {
        let profile = ShardProfile::derive(0xF1EE7, shard);
        let mut truth = CorrelatedTruth::new(
            by_name("TeraSort")
                .expect("in suite")
                .instantiate(&catalog, 0),
            profile,
        );
        let pmu = Pmu::new(&catalog, profile.pmu_config(&base_cfg));
        let run = pmu.run_multiplexed(&mut truth, &schedule, WINDOWS);
        let cfg = corrector
            .get_or_insert_with(|| CorrectorConfig::for_run(&run))
            .clone();
        let monitor = Monitor::new(&catalog, cfg, 1 << 14).expect("spawn monitor");
        for w in &run.windows {
            for s in &w.samples {
                monitor.push_sample(*s)?;
            }
        }
        monitor.flush()?; // correct the tail + publish the posterior
        monitors.push(monitor);
    }

    // Shard 0 is scraped over a real TCP socket; shards 1..N sit behind
    // seeded lossy links (15% drop, occasional lag past the deadline).
    let mut scraper = FleetScraper::new(
        catalog.len(),
        ScrapeConfig {
            deadline: Duration::from_millis(50),
            ..ScrapeConfig::default()
        },
    );
    let session0 = monitors[0].session().open()?;
    let server = ScrapeServer::bind_tcp(
        "127.0.0.1:0",
        ScrapeResponder::new(ShardId::from_raw(0), ShardLabel::new("node00", 0), session0),
    )?;
    let addr = server.local_addr().expect("bound");
    scraper.add_endpoint(
        ShardId::from_raw(0),
        ShardLabel::new("node00", 0),
        Box::new(TcpTransport::new(addr)),
    );
    let template = LinkProfile {
        latency_us: 20_000.0,
        latency_jitter_us: 45_000.0,
        ..LinkProfile::lossy(0xBADCAB1E, 0.15)
    };
    for shard in 1..SHARDS {
        let session = monitors[shard as usize].session().open()?;
        let label = ShardLabel::new(format!("node{:02}", shard / 2), shard % 2);
        let responder = Arc::new(ScrapeResponder::new(
            ShardId::from_raw(shard),
            label.clone(),
            session,
        ));
        // The last shard sits behind a nearly dead link, so the health
        // machinery (aging, backoff, variance inflation) is visible.
        let profile = if shard == SHARDS - 1 {
            LinkProfile {
                drop_prob: 0.95,
                ..template.derive(shard)
            }
        } else {
            template.derive(shard)
        };
        scraper.add_endpoint(
            ShardId::from_raw(shard),
            label,
            Box::new(SimTransport::new(responder, LinkState::new(profile))),
        );
    }

    // Pump scrape rounds. Delta scrapes collapse to tiny Unchanged acks
    // once every cache is current — watch bytes_received fall.
    println!(
        "{:>5} {:>6} {:>6} {:>6} {:>5} {:>9}",
        "round", "full", "acks", "fails", "contr", "rx bytes"
    );
    for _ in 0..8 {
        let report = scraper.poll_round();
        println!(
            "{:>5} {:>6} {:>6} {:>6} {:>5} {:>9}",
            report.round,
            report.full_snapshots,
            report.unchanged,
            report.failures,
            report.contributors,
            report.bytes_received
        );
    }

    // The published snapshot: fused posteriors plus per-shard health.
    let reader = scraper.reader();
    let snap = reader.read().expect("lossy fleet still publishes");
    println!("\nfused posteriors (generation {}):", snap.generation);
    for &e in &events {
        let g = snap.fused[e.index()];
        println!(
            "  {:<30} {:>12.0} ± {:>9.0}",
            catalog.event(e).name,
            g.mean,
            g.var.sqrt()
        );
    }
    println!("\nper-shard health (staleness inflates, Dead is excluded):");
    for h in &snap.health {
        println!(
            "  {}: {:?} (age {}, inflation {:.2}, timeouts {}, link {}, decode {})",
            h.shard, h.state, h.age, h.inflation, h.timeouts, h.link_errors, h.decode_errors
        );
    }
    let degraded = snap
        .health
        .iter()
        .filter(|h| h.state != HealthState::Healthy)
        .count();
    println!(
        "\n{} of {} endpoints degraded this round; the fused posterior is \
         never sharper than the all-healthy fusion of its contributors.",
        degraded,
        snap.health.len()
    );
    drop(snap); // release the snapshot slot before further rounds

    // Live telemetry: one TELEMETRY_REQ round pulls every reachable
    // shard's registry over the same wire (v3 frame kind), merges it with
    // the scraper's own counters, and renders the fleet-wide state as
    // Prometheus text. Shard 0 answers over real TCP.
    let metrics = scraper.poll_telemetry();
    println!(
        "\nfleet-wide telemetry ({} series, excerpt):",
        metrics.len()
    );
    for line in render_prometheus(&metrics)
        .lines()
        .filter(|l| !l.starts_with('#') && !l.contains("_bucket"))
        .take(14)
    {
        println!("  {line}");
    }

    // The scraper-backed FleetSession: the same read/session surface an
    // in-process fleet offers, plus cumulative scrape totals served live
    // from the registry handles.
    let fleet_session = scraper.session(&catalog);
    let totals = fleet_session.scrape_totals()?;
    println!(
        "\nscrape totals: {} rounds ({} published), {} full snapshots, \
         {} acks, {} failures, {} B out / {} B in",
        totals.rounds,
        totals.published,
        totals.full_snapshots,
        totals.unchanged,
        totals.failures,
        totals.bytes_sent,
        totals.bytes_received
    );

    // Scrape/fuse spans recorded by the scraper itself: each poll_round
    // leaves one Scrape span per reachable endpoint and one Fuse span per
    // published fusion, tagged with the window they carried.
    let spans = scraper.telemetry().spans().records();
    let fused_spans = spans.iter().filter(|s| s.stage == Stage::Fuse).count();
    let scrape_spans = spans.iter().filter(|s| s.stage == Stage::Scrape).count();
    println!("spans: {scrape_spans} scrape + {fused_spans} fuse recorded this run");
    Ok(())
}
