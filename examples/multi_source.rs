//! Multi-source observation plane: one factor graph fusing a multiplexed
//! PMU with soft gauge sources (disk ops, disk bytes, package power) at
//! 4×/8×/16× slower cadences.
//!
//! The example runs the same workload three ways — PMU only, PMU + all
//! gauges, and PMU + gauges with one source pushed through a hot data
//! fault layer — and prints the cross-source derived events
//! (`Bytes_per_IOP`, `IPC_per_Watt`) plus the mean gauge-event posterior
//! spread for each, showing the fusion contract in action: gauges
//! tighten, faults widen but never corrupt.
//!
//! Run with: `cargo run --release --example multi_source`

use bayesperf::core::corrector::CorrectorConfig;
use bayesperf::core::service::Monitor;
use bayesperf::core::source::pump_sources;
use bayesperf::events::{Arch, Catalog, Semantic};
use bayesperf::simcpu::{
    pack_round_robin, DataFaultProfile, GaugeProfile, Pmu, PmuConfig, SampleSource, SimGauge,
};
use bayesperf::workloads::kmeans;

const WINDOWS: usize = 18;
const RUN_SEED: u64 = 3;

struct RunResult {
    bytes_per_iop: (f64, f64),
    ipc_per_watt: (f64, f64),
    gauge_sd: f64,
    late: u64,
}

fn run(with_gauges: bool, faulted: Option<usize>) -> RunResult {
    let cat = Catalog::with_observation_plane(Arch::X86SkyLake);
    let mut truth = kmeans().instantiate(&cat, RUN_SEED);
    let events = vec![
        cat.require(Semantic::IioRdTotal),
        cat.require(Semantic::IioWrTotal),
        cat.require(Semantic::UopsIssued),
        cat.require(Semantic::L1dMisses),
    ];
    let schedule = pack_round_robin(&cat, &events).expect("schedule fits");
    let pmu_cfg = PmuConfig::for_catalog(&cat);
    let pmu = Pmu::new(&cat, pmu_cfg);
    let run = pmu.run_multiplexed(&mut truth, &schedule, WINDOWS);

    let monitor =
        Monitor::new(&cat, CorrectorConfig::for_run(&run), 1 << 14).expect("spawn monitor");
    let session = monitor.session().open().expect("open session");

    let mut sources: Vec<Box<dyn SampleSource + '_>> = if with_gauges {
        cat.sources()[1..]
            .iter()
            .enumerate()
            .map(|(i, desc)| {
                let gauge = SimGauge::new(
                    &cat,
                    desc.id,
                    GaugeProfile::for_source(desc, 11 + i as u64),
                    &pmu_cfg,
                    kmeans().instantiate(&cat, RUN_SEED),
                )
                .expect("gauge source");
                let gauge = if faulted == Some(i) {
                    gauge.with_faults(DataFaultProfile {
                        nan_prob: 0.10,
                        inf_prob: 0.05,
                        corrupt_prob: 0.35,
                        corrupt_scale: 1.0e9,
                        stuck_prob: 0.15,
                        sub_nan_prob: 0.10,
                        seed: 97,
                    })
                } else {
                    gauge
                };
                Box::new(gauge) as Box<dyn SampleSource + '_>
            })
            .collect()
    } else {
        Vec::new()
    };

    for (w, win) in run.windows.iter().enumerate() {
        for s in &win.samples {
            monitor.push_sample(*s).expect("push");
        }
        pump_sources(&monitor, &mut sources, w as u32).expect("pump");
    }
    monitor.sync().expect("sync");
    monitor.flush().expect("flush");

    let read = |name: &str| {
        let r = session.read_derived(name).expect("derived read");
        (r.value, r.std_dev)
    };
    let mut gauge_sd = 0.0;
    for &sem in Semantic::gauges() {
        gauge_sd += session.read(cat.require(sem)).expect("gauge read").std_dev;
    }
    gauge_sd /= Semantic::gauges().len() as f64;

    RunResult {
        bytes_per_iop: read("Bytes_per_IOP"),
        ipc_per_watt: read("IPC_per_Watt"),
        gauge_sd,
        late: monitor.late_samples(),
    }
}

fn print_run(label: &str, r: &RunResult) {
    println!("{label}:");
    println!(
        "  Bytes_per_IOP = {:>10.1} ± {:<10.1}  IPC_per_Watt = {:.4} ± {:.4}",
        r.bytes_per_iop.0, r.bytes_per_iop.1, r.ipc_per_watt.0, r.ipc_per_watt.1
    );
    println!(
        "  mean gauge posterior spread = {:.0}, late-dropped samples = {}",
        r.gauge_sd, r.late
    );
}

fn main() {
    let cat = Catalog::with_observation_plane(Arch::X86SkyLake);
    println!("observation plane: {} sources", cat.sources().len());
    for d in cat.sources() {
        println!(
            "  #{} {:<12} kind={:?} cadence=every {} window(s) noise={:?}",
            d.id.index(),
            d.name,
            d.kind,
            d.cadence,
            d.noise
        );
    }
    println!();

    let pmu_only = run(false, None);
    print_run(
        "PMU only (gauge events anchored by invariants alone)",
        &pmu_only,
    );

    let fused = run(true, None);
    print_run("PMU + 3 gauges at 4x/8x/16x cadence", &fused);
    println!(
        "  -> fusing tightened mean gauge spread by {:.1}%",
        100.0 * (1.0 - fused.gauge_sd / pmu_only.gauge_sd)
    );

    let faulted = run(true, Some(0));
    print_run(
        "PMU + gauges, disk-ops source through a hot fault layer",
        &faulted,
    );
    println!(
        "  -> fault widened mean gauge spread by {:.1}% vs healthy (never sharper)",
        100.0 * (faulted.gauge_sd / fused.gauge_sd - 1.0)
    );
}
