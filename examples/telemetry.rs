//! The telemetry plane up close: a live monitor's metrics registry
//! rendered as Prometheus text, the pipeline spans one window leaves
//! behind, and the flight recorder's structured event trail across an
//! injected service panic and its supervised restart.
//!
//! Run with: `cargo run --release --example telemetry`

use bayesperf::core::corrector::CorrectorConfig;
use bayesperf::core::ServiceState;
use bayesperf::events::{Arch, Catalog, Semantic};
use bayesperf::obs::{render_prometheus, Stage};
use bayesperf::simcpu::{pack_round_robin, Pmu, PmuConfig};
use bayesperf::workloads::by_name;
use bayesperf::Monitor;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small multiplexed run through one supervised monitor.
    let catalog = Catalog::new(Arch::X86SkyLake);
    let events: Vec<_> = [
        Semantic::L1dMisses,
        Semantic::LlcHits,
        Semantic::LlcMisses,
        Semantic::BrMisp,
    ]
    .iter()
    .map(|&s| catalog.require(s))
    .collect();
    let schedule = pack_round_robin(&catalog, &events)?;
    let mut truth = by_name("TeraSort")
        .expect("in suite")
        .instantiate(&catalog, 0);
    let pmu = Pmu::new(&catalog, PmuConfig::for_catalog(&catalog));
    let run = pmu.run_multiplexed(&mut truth, &schedule, 24);

    let monitor = Monitor::new(&catalog, CorrectorConfig::for_run(&run), 1 << 14)?;
    for w in &run.windows {
        for s in &w.samples {
            monitor.push_sample(*s)?;
        }
    }
    monitor.flush()?;

    // 1. The metrics registry: every counter and histogram the service
    //    bumped while correcting, one namespaced surface, zero locks on
    //    the hot path. Rendered in Prometheus exposition format.
    let tele = monitor.telemetry();
    println!("== registry (excerpt) ==");
    for line in render_prometheus(&tele.registry().snapshot())
        .lines()
        .filter(|l| !l.starts_with('#') && !l.contains("_bucket"))
    {
        println!("{line}");
    }

    // 2. Pipeline spans: one window's life — ingest, window assembly, the
    //    EP sweep, snapshot publish — reconstructed from the span rings.
    let spans = tele.spans().records();
    let window = spans
        .iter()
        .filter(|s| s.stage == Stage::Publish)
        .map(|s| s.window)
        .max()
        .expect("flush published");
    println!("\n== spans for window {window} ==");
    for s in tele.spans().for_window(window) {
        println!(
            "{:<9} {:>9} ns  (start +{} ns)",
            s.stage.name(),
            s.end_ns - s.start_ns,
            s.start_ns
        );
    }

    // 3. The flight recorder: inject a panic, let the supervisor contain
    //    it and restart the service, then drain the structured event
    //    trail. A real `ServiceState::Failed` seals the same dump to
    //    stderr automatically.
    std::panic::set_hook(Box::new(|_| {})); // keep the injected unwind quiet
    monitor.inject_panic()?;
    while monitor.restarts() < 1 || monitor.service_state() != ServiceState::Running {
        std::thread::yield_now();
    }
    let _ = std::panic::take_hook();
    println!("\n== flight recorder after injected panic ==");
    for entry in tele.flight().drain() {
        println!("#{:<3} {}", entry.seq, entry.event);
    }
    println!(
        "\nservice is {:?} again after {} restart(s); the recorder ring is \
         drained and ready for the next incident.",
        monitor.service_state(),
        monitor.restarts()
    );
    Ok(())
}
