//! The uncertainty-driven multiplexing scheduler, end to end.
//!
//! The PMU hosts one event group per quantum; everything else is scaled —
//! the very error BayesPerf corrects (Fig. 2). This example closes the
//! loop and lets the *posterior* pick what to measure next:
//!
//! ```text
//!   quantum:  scheduler ──group──▶ PMU ──samples──▶ corrector
//!      ▲                                               │
//!      └────────── posterior relative variance ◀───────┘
//! ```
//!
//! Part 1 runs the deterministic closed loop on the kmeans workload with
//! the blind `RoundRobin` baseline and the `UncertaintyDriven` policy at
//! an **equal sample budget** (same windows, one group per quantum) and
//! compares the mean posterior relative variance each achieves.
//!
//! Part 2 shows the live-service wiring: a `ServiceScheduler` split into
//! a producer handle and a `ScheduleHook` installed on a `Monitor`, so the
//! background inference thread feeds the scheduler its own posteriors.
//!
//! Run with: `cargo run --release --example mux_scheduler`

use bayesperf::core::corrector::CorrectorConfig;
use bayesperf::core::Monitor;
use bayesperf::events::{Arch, Catalog};
use bayesperf::mlsched::mux::{
    hetero_demo_events, run_closed_loop, GroupSchedule, MuxPolicy, MuxScheduler, RoundRobin,
    ServiceScheduler, UncertaintyDriven,
};
use bayesperf::simcpu::{Extrapolate, Pmu, PmuConfig};
use bayesperf::workloads::kmeans;

fn main() {
    let catalog = Catalog::new(Arch::X86SkyLake);

    // Twelve core events on four programmable counters: three groups, so
    // each event is off the PMU two-thirds of the time. The groups are
    // deliberately heterogeneous — the situation Röhl et al. show matters:
    // the TLB/branch group has only weak (0.9-noise) invariant bands, so
    // skipping it is expensive; the µop-pipeline group is tied to the
    // always-measured fixed counters by tight flow invariants, so its
    // posterior stays sharp even unscheduled. A blind rotation cannot
    // tell the difference; the posterior can. (The same fixture backs the
    // closed-loop acceptance test and bench_json's gated entry.)
    let events = hetero_demo_events(&catalog);

    // The starvation bound K = 2G: the scheduler may chase uncertainty,
    // but every group is guaranteed to run at least once per 6 quanta.
    let schedule = GroupSchedule::from_events(&catalog, &events, 6).expect("groups fit the PMU");
    println!(
        "schedule: {} groups over {} events, starvation bound K = {}",
        schedule.len(),
        events.len(),
        schedule.starvation_bound()
    );

    // ── Part 1: equal-budget comparison on the closed loop ──────────────
    let n_windows = 48;
    let corrector_cfg = || {
        let pmu = Pmu::new(&catalog, PmuConfig::for_catalog(&catalog));
        let probe = pmu.run_polling(&mut kmeans().instantiate(&catalog, 0), &[], 1);
        CorrectorConfig::for_run(&probe)
    };
    let run = |policy: Box<dyn MuxPolicy>| {
        let mut truth = kmeans().instantiate(&catalog, 0);
        run_closed_loop(
            &catalog,
            &mut truth,
            PmuConfig::for_catalog(&catalog),
            schedule.clone(),
            policy,
            corrector_cfg(),
            n_windows,
        )
    };
    let rr = run(Box::new(RoundRobin));
    let ud = run(Box::<UncertaintyDriven>::default());

    for report in [&rr, &ud] {
        println!(
            "{:>12}: mean posterior rel. variance {:.5}, group runs {:?}, {} forced picks",
            report.policy, report.mean_rel_var, report.group_runs, report.forced_picks
        );
    }
    let reduction = 100.0 * (1.0 - ud.mean_rel_var / rr.mean_rel_var);
    println!(
        "uncertainty-driven reduces mean posterior variance by {reduction:.1}% \
         at an equal sample budget ({n_windows} windows)"
    );
    println!(
        "first {k} uncertainty-driven picks: {:?}",
        &ud.decisions[..schedule.starvation_bound().min(ud.decisions.len())],
        k = schedule.starvation_bound()
    );

    // ── Part 2: the live service drives its own schedule ────────────────
    // The hook half rides the inference thread (fed after every publish);
    // the handle half is what the sampling loop asks for the next group.
    let monitor = Monitor::new(&catalog, corrector_cfg(), 1 << 16).expect("spawn monitor");
    let scheduler = MuxScheduler::new(schedule.clone(), Box::new(UncertaintyDriven::default()));
    let (handle, hook) = ServiceScheduler::new(scheduler, catalog.len());
    let _session = monitor
        .session()
        .schedule_hook(hook)
        .open()
        .expect("fresh monitor");

    let pmu = Pmu::new(&catalog, PmuConfig::for_catalog(&catalog));
    let mut truth = kmeans().instantiate(&catalog, 0);
    let live = pmu.run_driven(
        &mut truth,
        schedule.groups(),
        n_windows,
        Extrapolate::LinuxScaled,
        |_, prev| {
            if let Some(w) = prev {
                for s in &w.samples {
                    monitor.push_sample(*s).expect("ring sized for the run");
                }
                // Demo determinism: wait for the service to catch up so
                // every pick sees the freshest posterior. A production
                // loop would skip this barrier and read whatever the
                // inference thread last published.
                monitor.sync().expect("service alive");
            }
            handle.next_group()
        },
    );
    let picks: Vec<usize> = live.windows.iter().map(|w| w.config_index).collect();
    let stats = handle.stats();
    println!(
        "live service: {} windows driven by the monitor's own posteriors \
         ({} policy picks, {} forced); last {k} picks: {:?}",
        picks.len(),
        stats.policy_picks,
        stats.forced_picks,
        &picks[picks.len() - schedule.starvation_bound()..],
        k = schedule.starvation_bound()
    );
}
