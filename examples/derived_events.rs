//! Measuring derived events (the §2 motivation): a metric like
//! `Memory_Bound` combines several HPCs, so its error compounds. This
//! example measures all ten derived metrics of the catalog through the
//! BayesPerf session API and prints values with propagated uncertainty.
//!
//! Run with: `cargo run --release --example derived_events`

use bayesperf::core::corrector::CorrectorConfig;
use bayesperf::core::scheduler::ScheduleTransformer;
use bayesperf::events::{Arch, Catalog, EventId};
use bayesperf::simcpu::{Pmu, PmuConfig};
use bayesperf::workloads::by_name;
use bayesperf::Monitor;
use std::collections::BTreeSet;

fn main() {
    let catalog = Catalog::new(Arch::Ppc64Power9);
    let workload = by_name("PageRank").expect("in suite");
    let mut truth = workload.instantiate(&catalog, 7);

    // The HPCs needed by the ten derived events.
    let mut needed = BTreeSet::new();
    for d in catalog.derived_events() {
        needed.extend(d.events());
    }
    let events: Vec<EventId> = needed
        .into_iter()
        .filter(|&e| catalog.event(e).is_programmable())
        .collect();
    println!(
        "{} derived events -> {} unique programmable HPCs on {} counters",
        catalog.derived_events().len(),
        events.len(),
        catalog.pmu().programmable_total()
    );

    let transformer = ScheduleTransformer::new(&catalog);
    let schedule = transformer.plan(&events);
    let pmu = Pmu::new(&catalog, PmuConfig::for_catalog(&catalog));
    let run = pmu.run_multiplexed(&mut truth, &schedule.configs, 12);

    // Feed the kernel samples through the monitor service; the inference
    // thread corrects chunks in the background while we push.
    let monitor =
        Monitor::new(&catalog, CorrectorConfig::for_run(&run), 1 << 14).expect("spawn monitor");
    let session = monitor.session().open().expect("fresh monitor");
    for w in &run.windows {
        for s in &w.samples {
            let _ = monitor.push_sample(*s);
        }
    }
    // Correct the stream's ragged tail, then read each derived metric off
    // the final posterior snapshot — reads never run inference.
    monitor.flush().expect("service alive");

    let last_truth = &run.windows.last().expect("windows").truth;
    println!(
        "\n{:<24} {:>12} {:>12} {:>12}",
        "derived event", "bayesperf", "(+- sd)", "truth"
    );
    for d in catalog.derived_events() {
        let r = session.read_derived(&d.name).expect("posterior published");
        let true_val = d.eval(&last_truth[..]);
        println!(
            "{:<24} {:>12.4} {:>12.4} {:>12.4}",
            d.name, r.value, r.std_dev, true_val
        );
    }
}
