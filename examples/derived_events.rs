//! Measuring derived events (the §2 motivation): a metric like
//! `Memory_Bound` combines several HPCs, so its error compounds. This
//! example measures all ten derived metrics of the catalog through the
//! BayesPerf shim and prints values with credible intervals.
//!
//! Run with: `cargo run --release --example derived_events`

use bayesperf::core::corrector::CorrectorConfig;
use bayesperf::core::scheduler::ScheduleTransformer;
use bayesperf::core::shim::{BayesPerfShim, HpcReader};
use bayesperf::events::{Arch, Catalog, EventEnv, EventId};
use bayesperf::simcpu::{Pmu, PmuConfig};
use bayesperf::workloads::by_name;
use std::collections::BTreeSet;

struct ShimEnv<'a, 'b> {
    shim: std::cell::RefCell<&'a mut BayesPerfShim<'b>>,
}

impl EventEnv for ShimEnv<'_, '_> {
    fn value(&self, id: EventId) -> f64 {
        self.shim
            .borrow_mut()
            .read(id)
            .map(|r| r.value)
            .unwrap_or(0.0)
    }
}

fn main() {
    let catalog = Catalog::new(Arch::Ppc64Power9);
    let workload = by_name("PageRank").expect("in suite");
    let mut truth = workload.instantiate(&catalog, 7);

    // The HPCs needed by the ten derived events.
    let mut needed = BTreeSet::new();
    for d in catalog.derived_events() {
        needed.extend(d.events());
    }
    let events: Vec<EventId> = needed
        .into_iter()
        .filter(|&e| catalog.event(e).is_programmable())
        .collect();
    println!(
        "{} derived events -> {} unique programmable HPCs on {} counters",
        catalog.derived_events().len(),
        events.len(),
        catalog.pmu().programmable_total()
    );

    let transformer = ScheduleTransformer::new(&catalog);
    let schedule = transformer.plan(&events);
    let pmu = Pmu::new(&catalog, PmuConfig::for_catalog(&catalog));
    let run = pmu.run_multiplexed(&mut truth, &schedule.configs, 12);

    // Feed the kernel samples through the shim, then evaluate the derived
    // expressions on the posterior means.
    let mut shim = BayesPerfShim::new(&catalog, CorrectorConfig::for_run(&run), 1 << 14);
    for w in &run.windows {
        for s in &w.samples {
            shim.push_sample(*s);
        }
    }
    shim.process();

    let last_truth = &run.windows.last().expect("windows").truth;
    println!(
        "\n{:<24} {:>12} {:>12}",
        "derived event", "bayesperf", "truth"
    );
    let derived = catalog.derived_events().to_vec();
    let env = ShimEnv {
        shim: std::cell::RefCell::new(&mut shim),
    };
    for d in &derived {
        let estimated = d.eval(&env);
        let true_val = d.eval(&last_truth[..]);
        println!("{:<24} {:>12.4} {:>12.4}", d.name, estimated, true_val);
    }
}
