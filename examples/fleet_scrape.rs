//! The fleet layer end to end: eight sharded monitors (4 machines × 2
//! sockets) over heterogeneous-but-correlated workloads, scraped through
//! the binary wire codec, fused into fleet-level posteriors by
//! precision weighting, and read through a `FleetSession`.
//!
//! Run with: `cargo run --release --example fleet_scrape`

use bayesperf::core::corrector::CorrectorConfig;
use bayesperf::events::{Arch, Catalog, Semantic};
use bayesperf::fleet::{wire, Aggregator, FleetConfig, ShardId};
use bayesperf::simcpu::{pack_round_robin, CorrelatedTruth, Pmu, PmuConfig, ShardProfile};
use bayesperf::workloads::by_name;
use bayesperf::{Fleet, ShardLabel, ShimError};

const WINDOWS: usize = 12;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let catalog = Catalog::new(Arch::X86SkyLake);
    let events: Vec<_> = [
        Semantic::L1dMisses,
        Semantic::LlcHits,
        Semantic::LlcMisses,
        Semantic::BrMisp,
    ]
    .iter()
    .map(|&s| catalog.require(s))
    .collect();
    let schedule = pack_round_robin(&catalog, &events)?;

    // One reference workload; each shard runs a distinct-but-correlated
    // variant of it (per-machine rate scale, phase offset, noise scale —
    // all derived deterministically from the shard index).
    let base_cfg = PmuConfig::for_catalog(&catalog);
    let mut runs = Vec::new();
    for shard in 0..8u32 {
        let profile = ShardProfile::derive(0xF1EE7, shard);
        let mut truth = CorrelatedTruth::new(
            by_name("TeraSort")
                .expect("in suite")
                .instantiate(&catalog, 0),
            profile,
        );
        let pmu = Pmu::new(&catalog, profile.pmu_config(&base_cfg));
        runs.push(pmu.run_multiplexed(&mut truth, &schedule, WINDOWS));
    }

    // The fleet: one Monitor (ring + inference thread) per socket.
    let corrector = CorrectorConfig::for_run(&runs[0]);
    let mut fleet = Fleet::new(&catalog, FleetConfig::new(corrector)).expect("spawn fleet");
    let shards: Vec<ShardId> = (0..8)
        .map(|i| {
            fleet
                .add_shard(ShardLabel::new(format!("node{:02}", i / 2), i % 2))
                .expect("spawn shard")
        })
        .collect();

    // Ingest: the router fans each machine's kernel stream to its shard
    // without any cross-shard locking.
    let router = fleet.router();
    for (id, run) in shards.iter().zip(&runs) {
        for w in &run.windows {
            for s in &w.samples {
                if let Err(ShimError::RingOverflow { dropped }) = router.push_sample(*id, *s) {
                    eprintln!("{id}: backpressure, {dropped} dropped");
                }
            }
        }
    }
    fleet.flush()?; // correct every shard's tail + publish the fused view

    // --- Scrape over a byte boundary -----------------------------------
    // Each shard's posterior snapshot → versioned varint wire record →
    // decode on the "collector" side → analytic fusion. In production
    // the encode and decode halves live in different processes; the
    // bytes are the contract.
    let mut aggregator = Aggregator::new(catalog.len());
    aggregator.begin();
    let mut buf = Vec::new();
    let mut total_bytes = 0;
    for (id, (shard_id, label)) in shards.iter().zip(fleet.shards()) {
        let view = fleet.shard_session(*id)?.snapshot()?;
        let record = wire::ShardSnapshot::from_view(shard_id, label, &view);
        buf.clear();
        wire::encode_shard(&record, &mut buf);
        total_bytes += buf.len();
        let (decoded, _) = wire::decode_shard(&buf)?; // typed errors, never panics
        aggregator.absorb(decoded.status(), &decoded.posteriors)?;
    }
    let fused = aggregator.fuse(1)?;
    println!(
        "scraped {} shards over the wire: {} bytes total ({} events each)",
        fused.shards.len(),
        total_bytes,
        catalog.len()
    );

    // A fused fleet summary is itself wire-encodable for re-publication.
    let summary = wire::FleetSummary::of(&fused);
    buf.clear();
    wire::encode_summary(&summary, &mut buf);
    println!("fleet summary record: {} bytes\n", buf.len());

    // --- Fleet-level reads ----------------------------------------------
    let session = fleet.session().events(&events).open()?;
    let group = session.read_group()?;
    // (The aggregation-pass counter `group.generation` is timing-dependent
    // — idle scrapes publish while samples stream — so the walkthrough
    // prints only the deterministic parts of the reading.)
    println!(
        "fleet posterior (frontier window {}, {} shards):",
        group.max_window, group.shards
    );
    println!(
        "{:<18} {:>14} {:>12}   {:>14} {:>14}",
        "event", "fused mean", "± sd", "p50 shard", "p99 shard"
    );
    let snap = session.snapshot()?;
    for (e, r) in &group.readings {
        let name = &catalog.event(*e).name;
        let p50 = snap.percentile_mean(e.index(), 0.50).unwrap_or(f64::NAN);
        let p99 = snap.percentile_mean(e.index(), 0.99).unwrap_or(f64::NAN);
        println!(
            "{:<18} {:>14.0} {:>12.0}   {:>14.0} {:>14.0}",
            name, r.value, r.std_dev, p50, p99
        );
    }

    // Per-shard drill-down behind one fused number.
    let llc = catalog.require(Semantic::LlcMisses);
    println!("\nllc-misses per shard (fused above weighs the confident ones):");
    for (shard, r) in session.shard_readings(llc)? {
        println!("  {shard}: {:>12.0} ± {:>10.0}", r.value, r.std_dev);
    }
    let stragglers = snap.stragglers(1);
    println!(
        "\nstragglers (> 1 window behind frontier): {}",
        if stragglers.is_empty() {
            "none".to_string()
        } else {
            format!("{stragglers:?}")
        }
    );

    // Derived metrics work at fleet scope with the same propagation as
    // per-machine sessions.
    let derived = &catalog.derived_events()[0].name.clone();
    let fleet_metric = fleet
        .session()
        .derived(derived)
        .open()?
        .read_derived(derived)?;
    println!(
        "\nfleet {derived}: {:.4} ± {:.4}",
        fleet_metric.value, fleet_metric.std_dev
    );
    Ok(())
}
