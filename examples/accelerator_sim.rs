//! Explore the BayesPerf accelerator: simulate inference jobs through the
//! DES, inspect the read path, and print the area/power model.
//!
//! Run with: `cargo run --release --example accelerator_sim`

use bayesperf::accel::{area_power, AccelConfig, Accelerator, FpgaPart, InferenceJob, ReadPath};

fn main() {
    for (name, cfg) in [
        ("ppc64 / CAPI 2.0", AccelConfig::ppc64()),
        ("x86 / PCIe DMA", AccelConfig::x86()),
    ] {
        let acc = Accelerator::new(cfg);
        let trace = acc.simulate_job(&InferenceJob::typical());
        println!("{name}:");
        println!(
            "  job: {} cycles total ({:.0} us) = ingest {} + compute {} + writeback {}",
            trace.total_cycles,
            trace.total_us(acc.config()),
            trace.ingest_cycles,
            trace.compute_cycles,
            trace.writeback_cycles
        );
        println!(
            "  {} site updates, {} NoC messages, EP utilization {:.0}%",
            trace.site_updates,
            trace.noc_messages,
            100.0 * trace.ep_utilization(acc.config())
        );
        let r = area_power(&cfg, &FpgaPart::vu3p());
        println!(
            "  area: BRAM {:.0}% DSP {:.0}% FF {:.0}% LUT {:.0}% URAM {:.0}%, power {:.1} W measured",
            r.bram_pct, r.dsp_pct, r.ff_pct, r.lut_pct, r.uram_pct, r.measured_power_w
        );
    }
    println!(
        "\nread path: Linux {} cycles, rdpmc {}, BayesPerf+accel {} (+{:.1}%)",
        ReadPath::LinuxSyscall.host_cycles(),
        ReadPath::Rdpmc.host_cycles(),
        ReadPath::BayesPerfAccel.host_cycles(),
        100.0
            * (ReadPath::BayesPerfAccel.host_cycles() as f64
                / ReadPath::LinuxSyscall.host_cycles() as f64
                - 1.0)
    );
}
