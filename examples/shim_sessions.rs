//! The session API end to end: a `Monitor` with its background inference
//! thread, a producer streaming kernel samples, concurrent reader threads
//! polling lock-free posterior snapshots, and a subscriber consuming the
//! per-window posterior stream (paper §5 / Fig. 3: reads are served from
//! already-computed posteriors while inference runs asynchronously).
//!
//! Run with: `cargo run --release --example shim_sessions`

use bayesperf::core::corrector::CorrectorConfig;
use bayesperf::core::scheduler::ScheduleTransformer;
use bayesperf::events::{Arch, Catalog, Semantic};
use bayesperf::simcpu::{Pmu, PmuConfig};
use bayesperf::workloads::by_name;
use bayesperf::{Monitor, ShimError};

fn main() {
    // A Sky Lake-like CPU running TeraSort, with the cache hierarchy
    // multiplexed over the physical counters.
    let catalog = Catalog::new(Arch::X86SkyLake);
    let mut truth = by_name("TeraSort")
        .expect("in suite")
        .instantiate(&catalog, 0);
    let events: Vec<_> = [
        Semantic::L1dMisses,
        Semantic::LlcHits,
        Semantic::LlcMisses,
        Semantic::BrMisp,
    ]
    .iter()
    .map(|&s| catalog.require(s))
    .collect();
    let schedule = ScheduleTransformer::new(&catalog).plan(&events);
    let pmu = Pmu::new(&catalog, PmuConfig::for_catalog(&catalog));
    let run = pmu.run_multiplexed(&mut truth, &schedule.configs, 21);

    // One monitor service == one perf "fd". Sessions are cheap handles.
    let monitor =
        Monitor::new(&catalog, CorrectorConfig::for_run(&run), 1 << 14).expect("spawn monitor");
    let poller = monitor
        .session()
        .events(&events)
        .open()
        .expect("fresh monitor");
    let subscriber = monitor.session().events(&events).open().expect("open");
    let mut updates = subscriber.subscribe();

    let llc = catalog.require(Semantic::LlcMisses);
    std::thread::scope(|s| {
        // Reader thread: polls the latest posterior while the producer is
        // still streaming — non-blocking, zero inference on this path.
        s.spawn(|| {
            let mut served = 0u64;
            let mut last_window = None;
            loop {
                match poller.read(llc) {
                    Ok(r) => {
                        let group = poller.read_group().expect("snapshot");
                        if last_window != Some(group.window) {
                            println!(
                                "poll : window {:>2}  llc-misses {:>12.0} (+-{:>9.0})",
                                group.window, r.value, r.std_dev
                            );
                            last_window = Some(group.window);
                        }
                        served += 1;
                    }
                    Err(ShimError::NoPosteriorYet) => {}
                    Err(_) => break, // monitor closed
                }
                if served > 0 && last_window == Some(run.windows.len() as u32 - 1) {
                    break;
                }
                std::thread::yield_now();
            }
            println!("poll : {served} lock-free reads served");
        });

        // Producer: the kernel side, pushing ring samples in window order.
        for w in &run.windows {
            for sample in &w.samples {
                if let Err(ShimError::RingOverflow { dropped }) = monitor.push_sample(*sample) {
                    eprintln!("ring overflow ({dropped} dropped)");
                }
            }
        }
        // Correct the ragged tail so the last windows publish too.
        monitor.flush().expect("service alive");
    });

    // The subscriber sees every corrected window exactly once, in order,
    // with the EP run stats that produced it.
    println!("\nwindow  chunk  sweeps  llc-misses posterior");
    let mut n = 0;
    while let Ok(Some(u)) = updates.try_next() {
        if let Some(r) = u.reading(llc) {
            if u.window % 4 == 0 {
                println!(
                    "{:>6}  {:>5}  {:>6}  {:>12.0} (+-{:>9.0})",
                    u.window, u.chunk, u.stats.sweeps_run, r.value, r.std_dev
                );
            }
            n += 1;
        }
    }
    println!(
        "\n{n} per-window updates from {} inference runs; \
         {} late samples, {} ring drops",
        monitor.chunks_run(),
        monitor.late_samples(),
        monitor.dropped()
    );
}
